// Event-driven cycle skipping (sta/sta_processor.cc: maybe_skip_ahead) is
// gated on a bit-identical-results contract: with skipping on or off, a run
// must produce the same SimResult, the same full stats registry (counters,
// gauges, histograms), the same run-report bytes, the same pipeline trace,
// the same lockstep-checked commit stream, and fire injected faults at the
// same cycles. These tests A/B every one of those surfaces with the knob
// flipped, across memory latencies high enough that the skip path dominates.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "common/error.h"
#include "core/sim_config.h"
#include "core/simulator.h"
#include "fault/fault.h"
#include "harness/report.h"
#include "isa/assembler.h"
#include "workloads/workload.h"

namespace wecsim {
namespace {

// Everything observable about one run, rendered to comparable strings.
struct RunArtifacts {
  SimResult result;
  std::string report;       // full-registry run report (byte-comparable)
  std::string trace_jsonl;  // empty unless tracing was requested
  uint64_t skipped = 0;
  uint64_t jumps = 0;
};

struct RunOptions {
  bool skip = true;
  bool trace = false;
  bool lockstep = false;
  std::string faults;  // FaultPlan::parse spec; empty = none

  RunOptions& with_skip(bool v) { skip = v; return *this; }
  RunOptions& with_trace() { trace = true; return *this; }
  RunOptions& with_lockstep() { lockstep = true; return *this; }
  RunOptions& with_faults(std::string spec) {
    faults = std::move(spec);
    return *this;
  }
};

RunArtifacts run_program(const Program& program, StaConfig config,
                         const RunOptions& opt) {
  // The env override (parsed in the Simulator ctor) must not leak into A/B
  // runs driven through the config knob.
  unsetenv("WECSIM_SKIP");
  config.cycle_skip = opt.skip;
  Simulator sim(program, config);
  if (opt.trace) sim.trace().enable();
  if (opt.lockstep) sim.enable_lockstep();
  if (!opt.faults.empty()) sim.set_fault_plan(FaultPlan::parse(opt.faults));
  RunArtifacts a;
  a.result = sim.run();
  RunRecord rec;
  rec.workload = "program";
  rec.config_key = "point";  // identical key in both modes: any report
  rec.scale = 1;             // difference is then a real divergence
  rec.result = a.result;
  rec.counters = sim.stats().snapshot();
  rec.histograms = sim.stats().histogram_snapshot();
  rec.gauges = sim.stats().gauge_snapshot();
  a.report = render_run_report("cycle_skip_test", {rec});
  if (opt.trace) a.trace_jsonl = sim.trace().to_jsonl();
  a.skipped = sim.processor().skipped_cycles();
  a.jumps = sim.processor().skip_jumps();
  return a;
}

RunArtifacts run_workload(const std::string& name, StaConfig config,
                          const RunOptions& opt) {
  unsetenv("WECSIM_SKIP");
  config.cycle_skip = opt.skip;
  const Workload w = make_workload(name, {/*scale=*/1, /*seed=*/42});
  Simulator sim(w.program, config);
  if (opt.trace) sim.trace().enable();
  if (opt.lockstep) sim.enable_lockstep();
  if (!opt.faults.empty()) sim.set_fault_plan(FaultPlan::parse(opt.faults));
  w.init(sim.memory());
  RunArtifacts a;
  a.result = sim.run();
  RunRecord rec;
  rec.workload = w.name;
  rec.config_key = "point";
  rec.scale = 1;
  rec.result = a.result;
  rec.counters = sim.stats().snapshot();
  rec.histograms = sim.stats().histogram_snapshot();
  rec.gauges = sim.stats().gauge_snapshot();
  a.report = render_run_report("cycle_skip_test", {rec});
  if (opt.trace) a.trace_jsonl = sim.trace().to_jsonl();
  a.skipped = sim.processor().skipped_cycles();
  a.jumps = sim.processor().skip_jumps();
  return a;
}

StaConfig wec_with_mem_lat(uint32_t lat, uint32_t tus = 8) {
  StaConfig config = make_paper_config(PaperConfig::kWthWpWec, tus);
  config.mem.mem_lat = lat;
  return config;
}

// The pointer-chasing (cache-miss-bound) workload across a memory-latency
// sweep: the regime cycle skipping exists for. The whole report — every
// counter, gauge, and histogram of every TU — must match byte for byte.
TEST(CycleSkip, MemlatSweepByteIdentical) {
  for (const uint32_t lat : {60u, 200u, 500u}) {
    const StaConfig config = wec_with_mem_lat(lat);
    const RunArtifacts off = run_workload("181.mcf", config, RunOptions{}.with_skip(false));
    const RunArtifacts on = run_workload("181.mcf", config, RunOptions{});
    ASSERT_TRUE(on.result.halted);
    EXPECT_EQ(on.report, off.report) << "divergence at mem_lat=" << lat;
    EXPECT_EQ(off.skipped, 0u);
    EXPECT_EQ(off.jumps, 0u);
  }
  // At a 500-cycle memory latency the machine is mostly waiting: the skip
  // path must actually engage (the sweep above would pass vacuously if
  // next_event_cycle were conservatively "always now+1").
  const RunArtifacts on =
      run_workload("181.mcf", wec_with_mem_lat(500), RunOptions{});
  EXPECT_GT(on.skipped, 0u);
  EXPECT_GT(on.jumps, 0u);
}

// Small parallel program with tracing enabled: the JSONL event stream pins
// every pipeline event to its cycle, so a single event moved by skipping
// shows up as a byte diff.
TEST(CycleSkip, TraceByteIdenticalOnParallelProgram) {
  const Program p = assemble(R"(
  .data
out: .space 64
  .text
  li r1, 0
  begin
  j body
body:
  addi r5, r1, 1
  mv r4, r1
  mv r1, r5
  forksp body
  tsagd
  la r6, out
  slli r7, r4, 3
  add r6, r6, r7
  addi r8, r4, 100
  sd r8, 0(r6)
  addi r9, r4, 1
  li r10, 4
  bge r9, r10, exit
  thend
exit:
  abort
  endpar
  halt
)");
  StaConfig config = make_paper_config(PaperConfig::kWthWpWec, 4);
  config.mem.mem_lat = 400;  // long dead windows between fills
  const RunArtifacts off =
      run_program(p, config, RunOptions{}.with_skip(false).with_trace());
  const RunArtifacts on = run_program(p, config, RunOptions{}.with_trace());
  ASSERT_TRUE(on.result.halted);
  EXPECT_FALSE(on.trace_jsonl.empty());
  EXPECT_EQ(on.trace_jsonl, off.trace_jsonl);
  EXPECT_EQ(on.report, off.report);
}

// Lockstep checking replays every committed instruction against the
// functional interpreter; both modes must pass it AND leave identical
// reports (the checker's own counters are part of the registry).
TEST(CycleSkip, LockstepIdentical) {
  const StaConfig config = wec_with_mem_lat(300);
  const RunArtifacts off =
      run_workload("181.mcf", config, RunOptions{}.with_skip(false).with_lockstep());
  const RunArtifacts on =
      run_workload("181.mcf", config, RunOptions{}.with_lockstep());
  ASSERT_TRUE(on.result.halted);
  EXPECT_EQ(on.report, off.report);
}

// mem_delay / mem_drop fire at fill sites, counted per opportunity. Cycle
// skipping must not change which fills exist or when they are issued, so
// the injected-fault schedule — and everything downstream of it — is
// identical. The faulty runs must also differ from the fault-free run, or
// the comparison proves nothing.
TEST(CycleSkip, FaultPlansFireCycleExact) {
  const StaConfig config = wec_with_mem_lat(300);
  const std::string plan = "seed=7;mem_delay:every=5,cycles=450;mem_drop:every=9";
  const RunArtifacts off =
      run_workload("181.mcf", config, RunOptions{}.with_skip(false).with_faults(plan));
  const RunArtifacts on =
      run_workload("181.mcf", config, RunOptions{}.with_faults(plan));
  ASSERT_TRUE(on.result.halted);
  EXPECT_EQ(on.report, off.report);
  EXPECT_GT(on.skipped, 0u);

  const RunArtifacts clean = run_workload("181.mcf", config, RunOptions{});
  EXPECT_NE(on.result.cycles, clean.result.cycles)
      << "the fault plan had no effect; the A/B above is vacuous";
}

// wrong_kill rolls its dice once per running wrong thread per cycle inside
// step(): the fire() call count depends on every cycle being executed, so
// an armed wrong_kill plan must disable skipping outright (correctness
// first), and the A/B must still agree.
TEST(CycleSkip, WrongKillPlanDisablesSkipping) {
  const StaConfig config = wec_with_mem_lat(300);
  const std::string plan = "seed=3;wrong_kill:every=40";
  const RunArtifacts on =
      run_workload("181.mcf", config, RunOptions{}.with_faults(plan));
  EXPECT_EQ(on.skipped, 0u);
  EXPECT_EQ(on.jumps, 0u);
  const RunArtifacts off =
      run_workload("181.mcf", config, RunOptions{}.with_skip(false).with_faults(plan));
  EXPECT_EQ(on.report, off.report);
}

// The watchdog samples progress on a 64-cycle stride; a skip jump emulates
// the stride in closed form. A deadlocked program must therefore throw at
// the identical cycle with the identical machine-state dump.
TEST(CycleSkip, WatchdogTripsAtIdenticalCycle) {
  const Program p = assemble(R"(
  .data
cell: .dword 0
  .text
  begin
  j body
body:
  forksp waiter
  la r6, cell
  tsaddr r6, 0
  tsagd
  thend               # head ends WITHOUT storing the target
waiter:
  la r6, cell
  tsagd
  ld r7, 0(r6)        # stalls forever on the dependence
  thend
)");
  StaConfig config = make_paper_config(PaperConfig::kOrig, 2);
  config.watchdog_cycles = 5000;
  std::string what_off, what_on;
  uint64_t skipped_on = 0;
  for (const bool skip : {false, true}) {
    unsetenv("WECSIM_SKIP");
    StaConfig c = config;
    c.cycle_skip = skip;
    Simulator sim(p, c);
    try {
      sim.run();
      FAIL() << "expected the watchdog to trip (skip=" << skip << ")";
    } catch (const SimError& e) {
      (skip ? what_on : what_off) = e.what();
    }
    if (skip) skipped_on = sim.processor().skipped_cycles();
  }
  EXPECT_EQ(what_on, what_off);
  // The deadlock window is pure waiting: the skip run must have jumped
  // (i.e., the identical message was produced via the closed-form stride
  // emulation, not by never skipping).
  EXPECT_GT(skipped_on, 0u);
}

// A quiescent machine that never deadlocks (watchdog far away) must still
// stop exactly at max_cycles, with the bulk-incremented cycle counters
// agreeing with the stepped run.
TEST(CycleSkip, MaxCyclesClampIdentical) {
  const Program p = assemble(R"(
  .data
cell: .dword 0
  .text
  begin
  j body
body:
  forksp waiter
  la r6, cell
  tsaddr r6, 0
  tsagd
  thend
waiter:
  la r6, cell
  tsagd
  ld r7, 0(r6)
  thend
)");
  StaConfig config = make_paper_config(PaperConfig::kOrig, 2);
  config.watchdog_cycles = 1u << 20;  // must not fire before the cap
  config.max_cycles = 3000;
  const RunArtifacts off = run_program(p, config, RunOptions{}.with_skip(false));
  const RunArtifacts on = run_program(p, config, RunOptions{});
  EXPECT_FALSE(on.result.halted);
  EXPECT_EQ(on.result.cycles, 3000u);
  EXPECT_EQ(on.report, off.report);
  EXPECT_GT(on.skipped, 0u);
}

// WECSIM_SKIP (read in the Simulator ctor) overrides the config knob in
// both directions.
TEST(CycleSkip, EnvVarOverridesConfig) {
  const Workload w = make_workload("181.mcf", {/*scale=*/1, /*seed=*/42});
  const StaConfig config = wec_with_mem_lat(500);

  setenv("WECSIM_SKIP", "0", /*overwrite=*/1);
  {
    StaConfig c = config;
    c.cycle_skip = true;
    Simulator sim(w.program, c);
    w.init(sim.memory());
    sim.run();
    EXPECT_FALSE(sim.processor().cycle_skip_enabled());
    EXPECT_EQ(sim.processor().skipped_cycles(), 0u);
  }
  setenv("WECSIM_SKIP", "1", /*overwrite=*/1);
  {
    StaConfig c = config;
    c.cycle_skip = false;
    Simulator sim(w.program, c);
    w.init(sim.memory());
    sim.run();
    EXPECT_TRUE(sim.processor().cycle_skip_enabled());
    EXPECT_GT(sim.processor().skipped_cycles(), 0u);
  }
  unsetenv("WECSIM_SKIP");
}

// The memory system never holds an autonomous future event (outcomes are
// computed synchronously and parked in the requesting core's ROB), which is
// the load-bearing assumption behind scanning only the cores for wake-ups.
// Sanity-check the exposed horizons against it: nothing the hierarchy knows
// about can lie meaningfully beyond the end of the run.
TEST(CycleSkip, MemoryHorizonsStayBehindTheRun) {
  unsetenv("WECSIM_SKIP");
  const Workload w = make_workload("181.mcf", {/*scale=*/1, /*seed=*/42});
  StaConfig config = wec_with_mem_lat(500);
  config.cycle_skip = true;
  Simulator sim(w.program, config);
  w.init(sim.memory());
  const SimResult r = sim.run();
  ASSERT_TRUE(r.halted);
  const Cycle slack =
      config.mem.mem_lat + config.mem.l2_hit_lat + 2 * config.mem.l2_occupancy;
  for (TuId id = 0; id < sim.processor().num_tus(); ++id) {
    EXPECT_LE(sim.processor().tu(id).mem().fill_horizon(), r.cycles + slack);
  }
}

}  // namespace
}  // namespace wecsim
