// Assembler: directives, labels, pseudo-instructions, expressions, errors.
#include <gtest/gtest.h>

#include "common/error.h"
#include "isa/assembler.h"
#include "isa/disasm.h"

namespace wecsim {
namespace {

TEST(Assembler, EmptySourceYieldsEmptyProgram) {
  Program p = assemble("");
  EXPECT_EQ(p.num_instructions(), 0u);
  EXPECT_EQ(p.entry(), kDefaultTextBase);
}

TEST(Assembler, CommentsAndBlankLinesIgnored) {
  Program p = assemble("# comment\n   ; also comment\n\n  nop # trailing\n");
  ASSERT_EQ(p.num_instructions(), 1u);
  EXPECT_EQ(p.text()[0].op, Opcode::kNop);
}

TEST(Assembler, BasicThreeOperandForm) {
  Program p = assemble("add r3, r1, r2\nsub r4, r3, r1\n");
  ASSERT_EQ(p.num_instructions(), 2u);
  EXPECT_EQ(p.text()[0], (Instruction{Opcode::kAdd, 3, 1, 2, 0}));
  EXPECT_EQ(p.text()[1], (Instruction{Opcode::kSub, 4, 3, 1, 0}));
}

TEST(Assembler, MemoryOperandForm) {
  Program p = assemble("ld r4, 16(r2)\nsd r4, -8(r2)\nfld f1, 0(r3)\n");
  EXPECT_EQ(p.text()[0], (Instruction{Opcode::kLd, 4, 2, 0, 16}));
  EXPECT_EQ(p.text()[1], (Instruction{Opcode::kSd, 0, 2, 4, -8}));
  EXPECT_EQ(p.text()[2], (Instruction{Opcode::kFld, 1, 3, 0, 0}));
}

TEST(Assembler, RegisterAliases) {
  Program p = assemble("addi sp, sp, -16\nmv r1, zero\njalr r0, ra, 0\n");
  EXPECT_EQ(p.text()[0].rd, 30);
  EXPECT_EQ(p.text()[1].rs1, 0);
  EXPECT_EQ(p.text()[2].rs1, 31);
}

TEST(Assembler, ForwardAndBackwardLabels) {
  Program p = assemble(R"(
start:
  beq r1, r2, done
  j start
done:
  halt
)");
  const Addr start = p.symbol("start");
  const Addr done = p.symbol("done");
  EXPECT_EQ(p.text()[0].imm, static_cast<int64_t>(done));
  EXPECT_EQ(p.text()[1].imm, static_cast<int64_t>(start));
}

TEST(Assembler, PseudoInstructions) {
  Program p = assemble(R"(
  mv r2, r3
  subi r2, r2, 4
  beqz r2, out
  bnez r2, out
  ble r1, r2, out
  bgt r1, r2, out
  call out
  ret
out:
  la r5, out
  halt
)");
  EXPECT_EQ(p.text()[0].op, Opcode::kAddi);
  EXPECT_EQ(p.text()[1].imm, -4);
  EXPECT_EQ(p.text()[2].op, Opcode::kBeq);
  EXPECT_EQ(p.text()[3].op, Opcode::kBne);
  EXPECT_EQ(p.text()[4].op, Opcode::kBge);  // ble swaps operands
  EXPECT_EQ(p.text()[4].rs1, 2);
  EXPECT_EQ(p.text()[5].op, Opcode::kBlt);
  EXPECT_EQ(p.text()[6].rd, 31);  // call links through ra
  EXPECT_EQ(p.text()[7].op, Opcode::kJalr);
  EXPECT_EQ(p.text()[8].op, Opcode::kLi);
  EXPECT_EQ(p.text()[8].imm, static_cast<int64_t>(p.symbol("out")));
}

TEST(Assembler, DataDirectives) {
  Program p = assemble(R"(
  .data
w:
  .word 1, 2
d:
  .dword 0x1122334455667788
f:
  .double 1.5
sp:
  .space 3
  .align 8
post:
  .dword 7
)");
  EXPECT_EQ(p.symbol("w"), kDefaultDataBase);
  EXPECT_EQ(p.symbol("d"), kDefaultDataBase + 8);
  EXPECT_EQ(p.symbol("f"), p.symbol("d") + 8);
  EXPECT_EQ(p.symbol("post") % 8, 0u);
  const auto& data = p.data();
  EXPECT_EQ(data[0], 1);
  EXPECT_EQ(data[4], 2);
  EXPECT_EQ(data[8], 0x88);
  EXPECT_EQ(data[15], 0x11);
}

TEST(Assembler, EquAndExpressions) {
  Program p = assemble(R"(
  .equ N, 64
  .equ TWO_N, 128
  li r1, N
  li r2, N+8
  li r3, N-1
  .data
buf:
  .space N
)");
  EXPECT_EQ(p.text()[0].imm, 64);
  EXPECT_EQ(p.text()[1].imm, 72);
  EXPECT_EQ(p.text()[2].imm, 63);
  EXPECT_EQ(p.data().size(), 64u);
}

TEST(Assembler, EntryDirective) {
  Program p = assemble(".entry main\n  nop\nmain:\n  halt\n");
  EXPECT_EQ(p.entry(), p.symbol("main"));
}

TEST(Assembler, HexAndNegativeLiterals) {
  Program p = assemble("li r1, 0x10\nli r2, -0x10\nli r3, -42\n");
  EXPECT_EQ(p.text()[0].imm, 16);
  EXPECT_EQ(p.text()[1].imm, -16);
  EXPECT_EQ(p.text()[2].imm, -42);
}

TEST(Assembler, SuperthreadedOps) {
  Program p = assemble(R"(
body:
  forksp body
  fork body
  tsaddr r6, 8
  tsagd
  begin
  abort
  thend
  endpar
)");
  EXPECT_EQ(p.text()[0].op, Opcode::kForksp);
  EXPECT_EQ(p.text()[0].imm, static_cast<int64_t>(p.symbol("body")));
  EXPECT_EQ(p.text()[2], (Instruction{Opcode::kTsaddr, 0, 6, 0, 8}));
}

// --- error cases ----------------------------------------------------------

struct AsmError {
  const char* source;
  const char* what_contains;
};

class AssemblerErrors : public ::testing::TestWithParam<AsmError> {};

TEST_P(AssemblerErrors, ReportsUsefulMessage) {
  try {
    assemble(GetParam().source);
    FAIL() << "expected SimError for: " << GetParam().source;
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find(GetParam().what_contains),
              std::string::npos)
        << "actual message: " << e.what();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, AssemblerErrors,
    ::testing::Values(
        AsmError{"frobnicate r1, r2", "unknown mnemonic"},
        AsmError{"add r1, r2", "too few operands"},
        AsmError{"add r1, r2, r3, r4", "too many operands"},
        AsmError{"add r1, r2, r99", "bad register"},
        AsmError{"fadd f1, f2, r3", "expected f-register"},
        AsmError{"j nowhere", "undefined symbol"},
        AsmError{"dup:\ndup:\n  nop", "symbol redefined"},
        AsmError{".equ X", ".equ takes"},
        AsmError{".bogus 1", "unknown directive"},
        AsmError{".data\n  add r1, r2, r3", "instruction outside .text"},
        AsmError{"ld r1, r2", "usage: ld"},
        AsmError{"li r1, 12z4", "bad integer literal"}));

TEST(AssemblerErrors, MessagesCarryLineNumbers) {
  try {
    assemble("nop\nnop\nbogus_op r1\n");
    FAIL();
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(Disassembler, RoundTripsThroughReassembly) {
  const char* source = R"(
loop:
  addi r1, r1, 1
  blt r1, r2, loop
  ld r3, 8(r1)
  halt
)";
  Program p = assemble(source);
  // Disassembly contains label annotations and addresses; spot-check text.
  const std::string dis = disassemble(p);
  EXPECT_NE(dis.find("addi r1, r1, 1"), std::string::npos);
  EXPECT_NE(dis.find("loop:"), std::string::npos);
  EXPECT_NE(dis.find("# -> loop"), std::string::npos);
}

TEST(Program, ValidPcAndFetch) {
  Program p = assemble("nop\nhalt\n");
  EXPECT_TRUE(p.valid_pc(p.text_base()));
  EXPECT_TRUE(p.valid_pc(p.text_base() + kInstrBytes));
  EXPECT_FALSE(p.valid_pc(p.text_base() + 2 * kInstrBytes));
  EXPECT_FALSE(p.valid_pc(p.text_base() + 1));  // misaligned
  EXPECT_EQ(p.fetch(p.text_base() + 2 * kInstrBytes), nullptr);
  EXPECT_THROW(p.at(0), SimError);
}

}  // namespace
}  // namespace wecsim
