// Sampled simulation (core/sampled.h + harness wiring):
//   * accuracy property over every kernel — the sampled estimate's error
//     against the full-fidelity run stays within the reported confidence
//     interval (or the 2% acceptance floor, whichever is larger);
//   * bit-for-bit determinism of repeated sampled runs;
//   * A/B byte-diff of a full-fidelity run report against the checked-in
//     golden — proves the batched hot-path refactor changed no reported bit;
//   * sampled points bypass the on-disk result cache in both directions;
//   * sampled mode rejects fault injection / lockstep checking / malformed
//     WECSIM_SAMPLE_* environment values with a SimError.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "core/sampled.h"
#include "core/sim_config.h"
#include "core/simulator.h"
#include "fault/fault.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "workloads/workload.h"

namespace wecsim {
namespace {

namespace fs = std::filesystem;

class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::string old_;
  bool had_old_ = false;
};

std::string fresh_dir(const std::string& tag) {
  static int counter = 0;
  const std::string dir =
      (fs::temp_directory_path() /
       ("wecsim_sampling_" + tag + "_" + std::to_string(::getpid()) + "_" +
        std::to_string(counter++)))
          .string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

StaConfig sampled_config() {
  StaConfig config = make_paper_config(PaperConfig::kOrig, 4);
  config.sampling.enabled = true;  // auto-planned windows
  return config;
}

SampledResult run_sampled(const std::string& workload, uint32_t scale) {
  WorkloadParams params;
  params.scale = scale;
  Workload w = make_workload(workload, params);
  SampledSimulator sim(w.program, sampled_config());
  w.init(sim.memory());
  return sim.run();
}

// ---------------------------------------------------------------------------
// Accuracy: every kernel, smoke scale. The comparable full-run IPC basis is
// architectural instructions over cycles (func_instrs / cycles) — the run
// report's `committed` also counts wrong-execution commits.
// ---------------------------------------------------------------------------

TEST(SamplingTest, ExtrapolationWithinConfidenceIntervalOnEveryKernel) {
  for (const std::string& name : workload_names()) {
    SCOPED_TRACE(name);
    WorkloadParams params;
    params.scale = 1;
    Workload w = make_workload(name, params);
    Simulator full(w.program, make_paper_config(PaperConfig::kOrig, 4));
    w.init(full.memory());
    const SimResult full_result = full.run();
    ASSERT_TRUE(full_result.halted);

    const SampledResult sampled = run_sampled(name, params.scale);
    ASSERT_TRUE(sampled.halted);
    ASSERT_GT(sampled.func_instrs, 0u);
    ASSERT_GT(sampled.windows.size(), 0u);

    const double full_ipc = static_cast<double>(sampled.func_instrs) /
                            static_cast<double>(full_result.cycles);
    const double ipc_err_pct =
        100.0 * std::abs(sampled.ipc - full_ipc) / full_ipc;
    const double cycles_err_pct =
        100.0 *
        std::abs(static_cast<double>(sampled.extrapolated_cycles) -
                 static_cast<double>(full_result.cycles)) /
        static_cast<double>(full_result.cycles);
    // Statistical tolerance: the window-level CI when it is meaningful,
    // never tighter than the 2% acceptance floor.
    const double tolerance = std::max(sampled.ci95_pct, 2.0);
    EXPECT_LE(ipc_err_pct, tolerance)
        << "sampled ipc " << sampled.ipc << " vs full " << full_ipc;
    EXPECT_LE(cycles_err_pct, tolerance)
        << "extrapolated " << sampled.extrapolated_cycles << " vs full "
        << full_result.cycles;

    // Parallel cycles extrapolate as a fraction of total cycles (benches
    // like fig08 derive region speedups from them). Internal consistency
    // plus a loose accuracy bound against the full run's counter: the
    // parallel FRACTION carries both placement variance and the total-cycle
    // error, so its tolerance is twice the headline one.
    EXPECT_LE(sampled.extrapolated_parallel_cycles,
              sampled.extrapolated_cycles);
    const uint64_t full_parallel =
        full.stats().snapshot().at("sta.parallel_cycles");
    if (full_parallel > 0) {
      EXPECT_GT(sampled.extrapolated_parallel_cycles, 0u);
      const double par_err_pct =
          100.0 *
          std::abs(static_cast<double>(sampled.extrapolated_parallel_cycles) -
                   static_cast<double>(full_parallel)) /
          static_cast<double>(full_parallel);
      EXPECT_LE(par_err_pct, 2.0 * tolerance)
          << "extrapolated parallel " << sampled.extrapolated_parallel_cycles
          << " vs full " << full_parallel;
    }
  }
}

TEST(SamplingTest, SampledRunIsDeterministic) {
  const SampledResult a = run_sampled("mcf", 1);
  const SampledResult b = run_sampled("mcf", 1);
  EXPECT_EQ(a.func_instrs, b.func_instrs);
  EXPECT_EQ(a.detailed_cycles, b.detailed_cycles);
  EXPECT_EQ(a.extrapolated_cycles, b.extrapolated_cycles);
  EXPECT_EQ(a.extrapolated_committed, b.extrapolated_committed);
  EXPECT_EQ(a.extrapolated_parallel_cycles, b.extrapolated_parallel_cycles);
  EXPECT_EQ(a.cpi, b.cpi);  // exact: same arithmetic on same integers
  ASSERT_EQ(a.windows.size(), b.windows.size());
  for (size_t i = 0; i < a.windows.size(); ++i) {
    EXPECT_EQ(a.windows[i].start_instr, b.windows[i].start_instr);
    EXPECT_EQ(a.windows[i].measure_cycles, b.windows[i].measure_cycles);
    EXPECT_EQ(a.windows[i].measure_commits, b.windows[i].measure_commits);
  }
}

// ---------------------------------------------------------------------------
// A/B byte-diff: a full-fidelity run report must match the checked-in golden
// byte for byte. This pins the batched/SoA hot-path refactor (RobRing,
// operand ready latch, run-length occupancy batching, flat protocol queues)
// to "zero observable change" — any drift in cycles, stats, histograms, or
// serialization shows up as a diff here.
// ---------------------------------------------------------------------------

TEST(SamplingTest, FullFidelityReportMatchesGolden) {
  WorkloadParams params;
  params.scale = 1;
  Workload w = make_workload("mcf", params);
  Simulator sim(w.program, make_paper_config(PaperConfig::kWthWpWec));
  w.init(sim.memory());
  sim.trace().enable();
  const SimResult result = sim.run();
  ASSERT_TRUE(result.halted);

  RunRecord record;
  record.workload = w.name;
  record.config_key = paper_config_name(PaperConfig::kWthWpWec);
  record.scale = params.scale;
  record.result = result;
  record.counters = sim.stats().snapshot();
  record.histograms = sim.stats().histogram_snapshot();
  record.gauges = sim.stats().gauge_snapshot();
  const std::string report = render_run_report("golden", {record});

  const std::string golden_path =
      std::string(WECSIM_TESTS_DIR) + "/golden/run_report_full_fidelity.json";
  std::ifstream in(golden_path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden: " << golden_path;
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(report, buf.str());
}

// ---------------------------------------------------------------------------
// Cache bypass: a sampled point must neither store into nor load from the
// byte-identity result cache. The same directory then serves a full-fidelity
// point, proving the cache itself works.
// ---------------------------------------------------------------------------

namespace {
size_t cache_entries(const std::string& dir) {
  size_t n = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".json") ++n;
  }
  return n;
}
}  // namespace

TEST(SamplingTest, SampledPointsBypassResultCache) {
  const std::string dir = fresh_dir("cache");
  WorkloadParams params;
  params.scale = 1;
  {
    ScopedEnv sample("WECSIM_SAMPLE", "1");
    ExperimentRunner runner(params, dir);
    runner.run("mcf", "orig", make_paper_config(PaperConfig::kOrig, 4));
    ASSERT_EQ(runner.records().size(), 1u);
    EXPECT_TRUE(runner.records()[0].sampling.enabled);
  }
  EXPECT_EQ(cache_entries(dir), 0u) << "sampled point wrote a cache entry";
  {
    ExperimentRunner runner(params, dir);
    runner.run("mcf", "orig", make_paper_config(PaperConfig::kOrig, 4));
  }
  EXPECT_EQ(cache_entries(dir), 1u) << "full-fidelity point did not cache";
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Incompatibilities and env validation.
// ---------------------------------------------------------------------------

TEST(SamplingTest, SampledRejectsFaultInjection) {
  WorkloadParams params;
  params.scale = 1;
  ExperimentRunner runner(params, std::string());
  runner.set_failsoft_limits(1, 0);
  runner.set_fault_plan(FaultPlan::parse("mispredict:every=100"));
  EXPECT_THROW(
      runner.run("mcf", "sampled", sampled_config()),
      SimError);
}

TEST(SamplingTest, SampledRejectsLockstepChecking) {
  WorkloadParams params;
  params.scale = 1;
  ScopedEnv check("WECSIM_CHECK", "1");
  ExperimentRunner runner(params, std::string());
  runner.set_failsoft_limits(1, 0);
  EXPECT_THROW(
      runner.run("mcf", "sampled", sampled_config()),
      SimError);
}

TEST(SamplingTest, MalformedSampleEnvIsRejectedUpFront) {
  WorkloadParams params;
  params.scale = 1;
  {
    ScopedEnv sample("WECSIM_SAMPLE", "1");
    ScopedEnv ff("WECSIM_SAMPLE_FF", "banana");
    EXPECT_THROW(ExperimentRunner(params, std::string()), SimError);
  }
  {
    ScopedEnv sample("WECSIM_SAMPLE", "maybe");
    EXPECT_THROW(ExperimentRunner(params, std::string()), SimError);
  }
}

}  // namespace
}  // namespace wecsim
