// Self-profiling (obs/profile.h): zero-overhead-when-off phase timers over
// the simulator hot loop and the harness, surfaced as the timing report's
// "profile" section. Checks phase coverage, on/off behaviour, and the
// rusage fields the timing side-channel now carries.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "core/sim_config.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "obs/json.h"
#include "obs/profile.h"

namespace wecsim {
namespace {

/// Leaves the global profiler off, whatever a test did with it.
class ProfileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_profile_enabled(false);
    reset_profile();
  }
  void TearDown() override {
    set_profile_enabled(false);
    reset_profile();
  }

  static std::vector<RunRecord> run_sweep() {
    WorkloadParams params;
    params.scale = 1;
    ExperimentRunner runner(params, std::string());
    runner.run("mcf", "wth_wp_wec",
               make_paper_config(PaperConfig::kWthWpWec, 4));
    return runner.records();
  }
};

TEST_F(ProfileTest, PhaseNamesAreStableAndDotted) {
  for (size_t i = 0; i < kNumProfPhases; ++i) {
    const std::string name = profile_phase_name(static_cast<ProfPhase>(i));
    EXPECT_NE(name, "unknown") << i;
    EXPECT_NE(name.find('.'), std::string::npos) << name;
  }
}

TEST_F(ProfileTest, OffModeCollectsNothing) {
  run_sweep();
  for (const ProfPhaseTotal& p : profile_snapshot()) {
    EXPECT_EQ(p.calls, 0u) << profile_phase_name(p.phase);
    EXPECT_EQ(p.ns, 0u) << profile_phase_name(p.phase);
  }
}

TEST_F(ProfileTest, OnModeCoversAtLeastEightPhases) {
  // Lockstep checking on, so the check.lockstep phase fires too.
  ::setenv("WECSIM_CHECK", "lockstep", 1);
  set_profile_enabled(true);
  run_sweep();
  ::unsetenv("WECSIM_CHECK");
  size_t active = 0;
  for (const ProfPhaseTotal& p : profile_snapshot()) {
    if (p.calls > 0) ++active;
  }
  // The acceptance bar is >= 8 distinct phases; a serial uncached sweep with
  // lockstep on exercises the whole core/sta/mem/check/harness set.
  EXPECT_GE(active, 8u);
  const auto snapshot = profile_snapshot();
  const auto calls_of = [&](ProfPhase phase) {
    return snapshot[static_cast<size_t>(phase)].calls;
  };
  EXPECT_GT(calls_of(ProfPhase::kCoreFetch), 0u);
  EXPECT_GT(calls_of(ProfPhase::kCoreCommit), 0u);
  EXPECT_GT(calls_of(ProfPhase::kStaRing), 0u);
  EXPECT_GT(calls_of(ProfPhase::kStaSkipScan), 0u);
  EXPECT_GT(calls_of(ProfPhase::kMemAccess), 0u);
  EXPECT_GT(calls_of(ProfPhase::kCheckLockstep), 0u);
  EXPECT_GT(calls_of(ProfPhase::kHarnessSimulate), 0u);
}

TEST_F(ProfileTest, ResetZeroesAccumulators) {
  set_profile_enabled(true);
  run_sweep();
  reset_profile();
  for (const ProfPhaseTotal& p : profile_snapshot()) {
    EXPECT_EQ(p.calls, 0u) << profile_phase_name(p.phase);
  }
}

TEST_F(ProfileTest, TimingReportCarriesProfileSectionOnlyWhenEnabled) {
  set_profile_enabled(true);
  const std::vector<RunRecord> records = run_sweep();

  const JsonValue with = parse_json(
      render_timing_report("profile_test", 1, 0.5, records));
  ASSERT_TRUE(with.has("profile"));
  const JsonValue& profile = with.at("profile");
  ASSERT_TRUE(profile.is_object());
  // Every phase appears (zeros included) so consumers see a stable shape.
  EXPECT_EQ(profile.fields().size(), kNumProfPhases);
  size_t active = 0;
  for (const auto& [name, entry] : profile.fields()) {
    EXPECT_NE(name.find('.'), std::string::npos) << name;
    EXPECT_GE(entry.at("seconds").as_double(), 0.0) << name;
    if (entry.at("calls").as_u64() > 0) ++active;
  }
  EXPECT_GE(active, 8u);

  set_profile_enabled(false);
  const JsonValue without = parse_json(
      render_timing_report("profile_test", 1, 0.5, records));
  EXPECT_FALSE(without.has("profile"));
}

TEST_F(ProfileTest, TimingReportRecordsRusage) {
  const std::vector<RunRecord> records = run_sweep();
  const JsonValue doc = parse_json(
      render_timing_report("profile_test", 1, 0.5, records));
  EXPECT_EQ(doc.at("schema").as_string(), "wecsim.bench_timing");
  // Peak RSS of a process that just simulated is far above zero.
  EXPECT_GT(doc.at("max_rss_kb").as_u64(), 1000u);
  EXPECT_GT(doc.at("user_cpu_seconds").as_double(), 0.0);
  EXPECT_GE(doc.at("sys_cpu_seconds").as_double(), 0.0);
}

TEST_F(ProfileTest, HarnessStrictlyRejectsMalformedProfileFlag) {
  ::setenv("WECSIM_PROFILE", "maybe", 1);
  EXPECT_THROW(ExperimentRunner runner, SimError);
  ::unsetenv("WECSIM_PROFILE");
}

}  // namespace
}  // namespace wecsim
