// Pipeline stress tests: extreme machine shapes (narrow issue, tiny ROB,
// single memory port, tiny fetch queue, gshare front end) must change only
// timing, never architectural results; plus per-core statistic checks.
#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.h"
#include "core/sim_config.h"
#include "core/simulator.h"
#include "func/interpreter.h"
#include "isa/assembler.h"

namespace wecsim {
namespace {

// Mixed program: dependent ALU chains, memory traffic with reuse, a
// data-dependent branch, and a function call.
constexpr const char* kStressProgram = R"(
  .data
buf:  .space 1024
out:  .space 32
  .text
entry:
  la  r1, buf
  li  r2, 0
  li  r3, 96
  li  r4, 0
  li  r5, 1
loop:
  andi r6, r2, 127
  slli r6, r6, 3
  add  r7, r1, r6
  ld   r8, 0(r7)
  add  r8, r8, r2
  sd   r8, 0(r7)
  andi r9, r8, 3
  beqz r9, skip
  mul  r4, r4, r5
  addi r4, r4, 7
skip:
  add  r4, r4, r8
  call helper
  addi r2, r2, 1
  blt  r2, r3, loop
  la  r10, out
  sd  r4, 0(r10)
  halt
helper:
  xor r4, r4, r2
  ret
)";

uint64_t reference_out(Program& program) {
  FlatMemory memory;
  memory.load_program(program);
  Interpreter interp(program, memory);
  FuncResult r = interp.run(10'000'000);
  EXPECT_TRUE(r.halted);
  return memory.read_u64(program.symbol("out"));
}

struct Shape {
  const char* name;
  uint32_t issue;
  uint32_t rob;
  uint32_t mem_ports;
  uint32_t fetch_queue;
};

class PipelineShape : public ::testing::TestWithParam<Shape> {};

TEST_P(PipelineShape, ArchitecturalStateIsShapeIndependent) {
  const Shape& shape = GetParam();
  Program program = assemble(kStressProgram);
  const uint64_t expected = reference_out(program);

  StaConfig config = make_paper_config(PaperConfig::kWthWpWec, 1);
  config.core.issue_width = shape.issue;
  config.core.fetch_width = shape.issue;
  config.core.rob_size = shape.rob;
  config.core.lsq_size = shape.rob;
  config.core.mem_ports = shape.mem_ports;
  config.core.fetch_queue_size = shape.fetch_queue;
  Simulator sim(program, config);
  SimResult r = sim.run();
  ASSERT_TRUE(r.halted) << shape.name;
  EXPECT_EQ(sim.memory().read_u64(program.symbol("out")), expected)
      << shape.name;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PipelineShape,
    ::testing::Values(Shape{"scalar", 1, 4, 1, 2},
                      Shape{"narrow", 2, 8, 1, 4},
                      Shape{"default", 8, 64, 2, 16},
                      Shape{"wide", 16, 128, 4, 32},
                      Shape{"tiny_rob_wide_issue", 8, 4, 2, 16}),
    [](const auto& info) { return info.param.name; });

TEST(PipelineFrontEnd, GshareMachineIsCorrect) {
  Program program = assemble(kStressProgram);
  const uint64_t expected = reference_out(program);

  StaConfig config = make_paper_config(PaperConfig::kWthWpWec, 1);
  config.core.bpred.kind = BpredKind::kGshare;
  config.core.bpred.hist_bits = 10;
  Simulator sim(program, config);
  SimResult r = sim.run();
  ASSERT_TRUE(r.halted);
  EXPECT_EQ(sim.memory().read_u64(program.symbol("out")), expected);
}

TEST(PipelineFrontEnd, StaticPredictorsAreCorrectJustSlower) {
  Program program = assemble(kStressProgram);
  const uint64_t expected = reference_out(program);

  Cycle cycles[2];
  int i = 0;
  for (BpredKind kind : {BpredKind::kBimodal, BpredKind::kNotTaken}) {
    StaConfig config = make_paper_config(PaperConfig::kOrig, 1);
    config.core.bpred.kind = kind;
    Simulator sim(program, config);
    SimResult r = sim.run();
    ASSERT_TRUE(r.halted);
    EXPECT_EQ(sim.memory().read_u64(program.symbol("out")), expected);
    cycles[i++] = r.cycles;
  }
  // Always-not-taken mispredicts every loop back-edge: must cost cycles.
  EXPECT_LT(cycles[0], cycles[1]);
}

TEST(PipelineStats, WrongPathLoadsAreHarvestedUnderWp) {
  // Data-dependent branches with loads on both arms: resolutions harvest
  // address-ready loads from the not-taken arm.
  Program program = assemble(R"(
  .data
a:   .space 2048
b:   .space 2048
out: .dword 0
  .text
  la r1, a
  la r2, b
  li r3, 0
  li r4, 200
  li r5, 0
loop:
  andi r6, r3, 7
  slli r7, r3, 3
  andi r7, r7, 2040
  # both arms' addresses are computed before the branch (scheduled code),
  # so the wrong arm's load is address-ready at resolution — the exact
  # situation of the paper's Figure 3 loads C and D
  add  r9, r1, r7
  add  r12, r2, r7
  slti r8, r6, 3
  beqz r8, armb
  ld   r10, 0(r9)
  j    join
armb:
  ld   r10, 0(r12)
join:
  add  r5, r5, r10
  addi r3, r3, 1
  blt  r3, r4, loop
  la r11, out
  sd r5, 0(r11)
  halt
)");
  StaConfig config = make_paper_config(PaperConfig::kWp, 1);
  Simulator sim(program, config);
  SimResult r = sim.run();
  ASSERT_TRUE(r.halted);
  EXPECT_GT(r.mispredicts, 5u);
  EXPECT_GT(r.wrong_path_loads, 0u)
      << "wp mode must issue loads from resolved-wrong paths";
  EXPECT_GT(r.l1d_wrong_accesses, 0u);
}

TEST(PipelineStats, OrigNeverIssuesWrongExecutionLoads) {
  Program program = assemble(kStressProgram);
  Simulator sim(program, make_paper_config(PaperConfig::kOrig, 1));
  SimResult r = sim.run();
  ASSERT_TRUE(r.halted);
  EXPECT_EQ(r.wrong_path_loads, 0u);
  EXPECT_EQ(r.l1d_wrong_accesses, 0u);
}

TEST(PipelineStats, CommittedCountsMatchInterpreter) {
  Program program = assemble(kStressProgram);
  FlatMemory memory;
  memory.load_program(program);
  Interpreter interp(program, memory);
  FuncResult func = interp.run();

  Simulator sim(program, make_paper_config(PaperConfig::kOrig, 1));
  SimResult r = sim.run();
  ASSERT_TRUE(r.halted);
  EXPECT_EQ(r.committed, func.instrs_total);
  // The core counts *executed* branches (wrong-path instances included), so
  // it can only exceed the interpreter's committed count.
  EXPECT_GE(r.branches, func.branches);
}

}  // namespace
}  // namespace wecsim
