// Structural invariants of the six workloads: they assemble at several
// scales, declare the expected symbols, follow the superthreaded code
// discipline, and scale their footprints with the scale parameter.
#include <gtest/gtest.h>

#include "common/error.h"
#include "func/interpreter.h"
#include "workloads/workload.h"

namespace wecsim {
namespace {

class WorkloadStructure : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadStructure, AssemblesAtMultipleScales) {
  for (uint32_t scale : {1u, 2u, 4u}) {
    WorkloadParams params;
    params.scale = scale;
    Workload w = make_workload(GetParam(), params);
    EXPECT_GT(w.program.num_instructions(), 20u);
    EXPECT_NE(w.checksum_addr, 0u);
    EXPECT_FALSE(w.description.empty());
  }
}

TEST_P(WorkloadStructure, FollowsTheCodeDiscipline) {
  Workload w = make_workload(GetParam(), {1, 42});
  int forks = 0, tsagds = 0, aborts = 0, thends = 0, endpars = 0, begins = 0,
      halts = 0;
  for (const Instruction& instr : w.program.text()) {
    switch (instr.op) {
      case Opcode::kFork:
      case Opcode::kForksp:
        ++forks;
        break;
      case Opcode::kTsagd:
        ++tsagds;
        break;
      case Opcode::kAbort:
        ++aborts;
        break;
      case Opcode::kThend:
        ++thends;
        break;
      case Opcode::kEndpar:
        ++endpars;
        break;
      case Opcode::kBegin:
        ++begins;
        break;
      case Opcode::kHalt:
        ++halts;
        break;
      default:
        break;
    }
  }
  EXPECT_GE(forks, 1);
  EXPECT_GE(tsagds, 1) << "every thread body needs a tsagd";
  EXPECT_GE(aborts, 1);
  EXPECT_GE(thends, 1);
  EXPECT_GE(endpars, 1);
  EXPECT_GE(begins, 1);
  EXPECT_GE(halts, 1);
}

TEST_P(WorkloadStructure, ChecksumIsDeterministicAndSeedSensitive) {
  auto checksum_for = [&](uint64_t seed) {
    WorkloadParams params{1, seed};
    Workload w = make_workload(GetParam(), params);
    FlatMemory memory;
    memory.load_program(w.program);
    w.init(memory);
    Interpreter interp(w.program, memory);
    FuncResult r = interp.run(50'000'000);
    EXPECT_TRUE(r.halted);
    return memory.read_u64(w.checksum_addr);
  };
  const uint64_t a1 = checksum_for(42);
  const uint64_t a2 = checksum_for(42);
  const uint64_t b = checksum_for(1234);
  EXPECT_EQ(a1, a2) << "same seed must give the same checksum";
  EXPECT_NE(a1, b) << "different seeds should give different checksums";
}

TEST_P(WorkloadStructure, InstructionCountGrowsWithScale) {
  auto instrs_for = [&](uint32_t scale) {
    WorkloadParams params{scale, 42};
    Workload w = make_workload(GetParam(), params);
    FlatMemory memory;
    memory.load_program(w.program);
    w.init(memory);
    Interpreter interp(w.program, memory);
    return interp.run(100'000'000).instrs_total;
  };
  EXPECT_GT(instrs_for(2), instrs_for(1));
}

INSTANTIATE_TEST_SUITE_P(All, WorkloadStructure,
                         ::testing::ValuesIn(workload_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           return n.substr(n.find('.') + 1);
                         });

TEST(WorkloadRegistry, ShortAndLongNamesResolve) {
  EXPECT_EQ(make_workload("mcf", {1, 42}).name, "181.mcf");
  EXPECT_EQ(make_workload("181.mcf", {1, 42}).name, "181.mcf");
  EXPECT_THROW(make_workload("nonexistent", {1, 42}), SimError);
}

TEST(WorkloadRegistry, SixBenchmarks) {
  EXPECT_EQ(workload_names().size(), 6u);
}

}  // namespace
}  // namespace wecsim
