// End-to-end coverage of the Table 3 machine shapes and cross-workload
// checks that the earlier suites don't reach: every Figure-8 machine must
// produce interpreter-identical results on a dependence-carrying parallel
// program, and the whole-suite checksums must be invariant across machine
// width, thread count, and side-structure choice.
#include <gtest/gtest.h>

#include "core/sim_config.h"
#include "core/simulator.h"
#include "func/interpreter.h"
#include "workloads/workload.h"

namespace wecsim {
namespace {

class Table3Machines : public ::testing::TestWithParam<uint32_t> {};

TEST_P(Table3Machines, WorkloadChecksumsMatchInterpreter) {
  const uint32_t tus = GetParam();
  for (const char* name : {"164.gzip", "183.equake"}) {
    WorkloadParams params{1, 42};
    Workload w = make_workload(name, params);

    FlatMemory ref;
    ref.load_program(w.program);
    w.init(ref);
    Interpreter interp(w.program, ref);
    ASSERT_TRUE(interp.run(50'000'000).halted);

    Simulator sim(w.program, make_table3_config(tus));
    w.init(sim.memory());
    SimResult r = sim.run();
    ASSERT_TRUE(r.halted) << name << " on " << tus << " TUs";
    EXPECT_EQ(sim.memory().read_u64(w.checksum_addr),
              ref.read_u64(w.checksum_addr))
        << name << " on " << tus << " TUs";
  }
}

INSTANTIATE_TEST_SUITE_P(AllRows, Table3Machines,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u),
                         [](const auto& info) {
                           return "tu" + std::to_string(info.param);
                         });

TEST(ChecksumInvariance, AcrossSideStructureSizes) {
  // Cache-parameter changes must never leak into architectural results.
  Workload w = make_workload("177.mesa", {1, 42});
  FlatMemory ref;
  ref.load_program(w.program);
  w.init(ref);
  Interpreter interp(w.program, ref);
  ASSERT_TRUE(interp.run(50'000'000).halted);
  const uint64_t expected = ref.read_u64(w.checksum_addr);

  for (uint32_t entries : {2u, 8u, 64u}) {
    StaConfig config = make_paper_config(PaperConfig::kWthWpWec, 4);
    config.mem.side_entries = entries;
    Simulator sim(w.program, config);
    w.init(sim.memory());
    ASSERT_TRUE(sim.run().halted);
    EXPECT_EQ(sim.memory().read_u64(w.checksum_addr), expected)
        << entries << "-entry WEC";
  }
}

TEST(ChecksumInvariance, AcrossCacheGeometry) {
  Workload w = make_workload("197.parser", {1, 42});
  FlatMemory ref;
  ref.load_program(w.program);
  w.init(ref);
  Interpreter interp(w.program, ref);
  ASSERT_TRUE(interp.run(50'000'000).halted);
  const uint64_t expected = ref.read_u64(w.checksum_addr);

  struct Geom {
    uint64_t l1_kb;
    uint32_t assoc;
    uint32_t block;
  };
  for (const Geom& g : {Geom{2, 1, 32}, Geom{8, 4, 64}, Geom{32, 2, 128}}) {
    StaConfig config = make_paper_config(PaperConfig::kWthWpWec, 4);
    config.mem.l1d = {g.l1_kb * 1024, g.assoc, g.block};
    Simulator sim(w.program, config);
    w.init(sim.memory());
    ASSERT_TRUE(sim.run().halted);
    EXPECT_EQ(sim.memory().read_u64(w.checksum_addr), expected)
        << g.l1_kb << "KB/" << g.assoc << "-way/" << g.block << "B";
  }
}

TEST(ChecksumInvariance, AcrossRingAndForkTiming) {
  Workload w = make_workload("175.vpr", {1, 42});
  FlatMemory ref;
  ref.load_program(w.program);
  w.init(ref);
  Interpreter interp(w.program, ref);
  ASSERT_TRUE(interp.run(50'000'000).halted);
  const uint64_t expected = ref.read_u64(w.checksum_addr);

  for (uint32_t fork_delay : {1u, 4u, 32u}) {
    for (uint32_t hop : {1u, 2u, 8u}) {
      StaConfig config = make_paper_config(PaperConfig::kOrig, 4);
      config.fork_delay = fork_delay;
      config.ring_hop_cycles = hop;
      Simulator sim(w.program, config);
      w.init(sim.memory());
      ASSERT_TRUE(sim.run().halted);
      EXPECT_EQ(sim.memory().read_u64(w.checksum_addr), expected)
          << "fork_delay=" << fork_delay << " hop=" << hop;
    }
  }
}

}  // namespace
}  // namespace wecsim
