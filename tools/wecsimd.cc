// wecsimd — fault-tolerant multi-tenant sweep service (docs/SERVICE.md).
//
//   wecsimd [options] <state_dir>
//
//   --socket PATH      Unix socket to serve on (default <state_dir>/
//                      wecsimd.sock, or WECSIM_SERVICE_SOCKET)
//   --listen HOST:PORT additional TCP listener, same protocol; port 0
//                      binds an ephemeral port, published in <socket>.tcp
//   --workers N        worker processes (default: hardware threads)
//   --max-queue N      global cap on queued points (backpressure)
//   --quota N          per-client cap on queued points
//   --retries N        crashed-worker retries before quarantine
//   --backoff-ms N     base worker-restart backoff
//   --lease-ms N       point-lease TTL; peer daemons sharing the state dir
//                      steal a point once its holder stops renewing
//
// Every flag has a WECSIM_SERVICE_* twin (harness/env.h); flags win.
// Exit: 0 drained idle, 3 (kExitInterrupted) drained with journaled work
// remaining — restart with the same state dir to resume — and 1 on setup
// or configuration errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/error.h"
#include "harness/env.h"
#include "service/daemon.h"

namespace wecsim {
namespace {

int usage() {
  std::fprintf(stderr,
               "usage: wecsimd [--socket PATH] [--listen HOST:PORT] "
               "[--workers N]\n"
               "               [--max-queue N] [--quota N] [--retries N]\n"
               "               [--backoff-ms N] [--lease-ms N] <state_dir>\n");
  return 1;
}

bool parse_u32_arg(const char* flag, const char* text, uint32_t min_value,
                   uint32_t max_value, uint32_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0' || v < min_value || v > max_value) {
    std::fprintf(stderr, "wecsimd: %s expects an integer in [%u, %u], got '%s'\n",
                 flag, min_value, max_value, text);
    return false;
  }
  *out = static_cast<uint32_t>(v);
  return true;
}

int daemon_main(int argc, char** argv) {
  std::string state_dir;
  std::string socket_override;
  std::string listen_override;
  bool listen_set = false;
  uint32_t workers = 0, max_queue = 0, quota = 0, backoff_ms = 0;
  uint32_t lease_ms = 0;
  uint32_t retries = static_cast<uint32_t>(-1);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--socket") {
      const char* v = next();
      if (v == nullptr) return usage();
      socket_override = v;
    } else if (arg == "--listen") {
      const char* v = next();
      if (v == nullptr || !valid_service_endpoint(v) ||
          std::strchr(v, '/') != nullptr) {
        std::fprintf(stderr, "wecsimd: --listen expects HOST:PORT, got '%s'\n",
                     v == nullptr ? "" : v);
        return usage();
      }
      listen_override = v;
      listen_set = true;
    } else if (arg == "--lease-ms") {
      const char* v = next();
      if (v == nullptr ||
          !parse_u32_arg("--lease-ms", v, 50, 600000, &lease_ms))
        return usage();
    } else if (arg == "--workers") {
      const char* v = next();
      if (v == nullptr || !parse_u32_arg("--workers", v, 1, 4096, &workers))
        return usage();
    } else if (arg == "--max-queue") {
      const char* v = next();
      if (v == nullptr ||
          !parse_u32_arg("--max-queue", v, 1, 1000000, &max_queue))
        return usage();
    } else if (arg == "--quota") {
      const char* v = next();
      if (v == nullptr || !parse_u32_arg("--quota", v, 1, 1000000, &quota))
        return usage();
    } else if (arg == "--retries") {
      const char* v = next();
      if (v == nullptr || !parse_u32_arg("--retries", v, 0, 100, &retries))
        return usage();
    } else if (arg == "--backoff-ms") {
      const char* v = next();
      if (v == nullptr ||
          !parse_u32_arg("--backoff-ms", v, 0, 600000, &backoff_ms))
        return usage();
    } else if (arg == "--help" || arg == "-h") {
      return usage();
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else if (state_dir.empty()) {
      state_dir = arg;
    } else {
      return usage();
    }
  }
  if (state_dir.empty()) return usage();

  try {
    ServiceConfig config = service_config_from_env(state_dir);
    if (!socket_override.empty()) config.socket = socket_override;
    if (workers != 0) config.workers = workers;
    if (max_queue != 0) config.max_queue = max_queue;
    if (quota != 0) config.quota = quota;
    if (retries != static_cast<uint32_t>(-1)) config.retries = retries;
    if (backoff_ms != 0) config.backoff_ms = backoff_ms;
    if (listen_set) config.listen = listen_override;
    if (lease_ms != 0) config.lease_ms = lease_ms;
    ServiceDaemon daemon(std::move(config));
    return daemon.run();
  } catch (const SimError& e) {
    std::fprintf(stderr, "wecsimd: %s\n", e.what());
    return 1;
  }
}

}  // namespace
}  // namespace wecsim

int main(int argc, char** argv) { return wecsim::daemon_main(argc, argv); }
