// wecsim-top — tail and render a wecsim.progress JSONL stream (see
// harness/progress.h and docs/OBSERVABILITY.md).
//
//   wecsim-top <file-or-dir>            follow the stream, render each beat
//   wecsim-top --once <file-or-dir>     render the latest state and exit
//   wecsim-top --check <file-or-dir>    validate every line against the
//                                       schema; exit 0 iff well-formed
//   wecsim-top --service <state_dir>    one-shot view of a wecsimd state
//                                       dir: per-job point states and
//                                       provenance (hot / cached / resumed
//                                       / stolen)
//
// Given a directory (e.g. $WECSIM_PROGRESS_DIR), the newest
// *.progress.jsonl inside it is selected. Follow mode exits when the stream
// emits its "finish" event.
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "harness/journal.h"
#include "obs/json.h"
#include "obs/jsonl.h"

namespace wecsim {
namespace {

namespace fs = std::filesystem;

int usage() {
  std::fprintf(stderr,
               "usage: wecsim-top [--once|--check] <progress-file-or-dir>\n"
               "       wecsim-top --service <state_dir>\n");
  return 2;
}

/// Directory argument -> newest *.progress.jsonl inside it.
std::string resolve_stream(const std::string& arg) {
  std::error_code ec;
  if (!fs::is_directory(arg, ec)) return arg;
  std::string best;
  fs::file_time_type best_time{};
  for (const auto& entry : fs::directory_iterator(arg, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() < 15 ||
        name.compare(name.size() - 15, 15, ".progress.jsonl") != 0) {
      continue;
    }
    const auto t = entry.last_write_time(ec);
    if (best.empty() || t > best_time) {
      best = entry.path().string();
      best_time = t;
    }
  }
  return best;
}

/// Throws SimError when `line` is not a well-formed wecsim.progress event.
JsonValue validate_line(const std::string& line) {
  const JsonValue v = parse_json(line);
  if (!v.is_object()) throw SimError("event is not an object");
  if (v.at("schema").as_string() != "wecsim.progress") {
    throw SimError("schema is not wecsim.progress");
  }
  // v1 streams (no skip/sampling telemetry) are accepted alongside v2:
  // every v2 addition is validated only when present.
  const int64_t version = v.at("schema_version").as_i64();
  if (version != 1 && version != 2) {
    throw SimError("unsupported schema_version");
  }
  const std::string event = v.at("event").as_string();
  if (event == "start") {
    v.at("pid").as_i64();
    v.at("interval_ms").as_u64();
  } else if (event == "heartbeat") {
    for (const char* key : {"seq", "total", "done", "running", "pending",
                            "quarantined", "fresh", "cache_hits", "replayed",
                            "retries", "sim_cycles_total"}) {
      v.at(key).as_u64();
    }
    v.at("elapsed_seconds").as_double();
    v.at("sim_cycles_per_second").as_double();
    v.at("eta_seconds").as_double();
    if (version >= 2) {
      v.at("skipped_cycles_total").as_u64();
      v.at("skipped_pct").as_double();
      v.at("sample_windows").as_u64();
      if (v.has("profile_top")) {
        for (const JsonValue& p : v.at("profile_top").items()) {
          p.at("phase").as_string();
          p.at("seconds").as_double();
        }
      }
    }
    for (const JsonValue& worker : v.at("workers").items()) {
      worker.at("worker").as_u64();
      const std::string state = worker.at("state").as_string();
      if (state != "idle" && state != "running") {
        throw SimError("unknown worker state: " + state);
      }
      if (state == "running") worker.at("point").as_string();
    }
  } else if (event == "point") {
    v.at("point").as_string();
    const std::string outcome = v.at("outcome").as_string();
    if (outcome != "fresh" && outcome != "cached" && outcome != "replayed" &&
        outcome != "quarantined") {
      throw SimError("unknown point outcome: " + outcome);
    }
    v.at("cycles").as_u64();
    v.at("run_seconds").as_double();
    v.at("retries").as_u64();
  } else if (event == "finish") {
    for (const char* key : {"total", "done", "quarantined", "fresh",
                            "cache_hits", "replayed", "retries",
                            "sim_cycles_total"}) {
      v.at(key).as_u64();
    }
    if (version >= 2) {
      v.at("skipped_cycles_total").as_u64();
      v.at("sample_windows").as_u64();
    }
    v.at("wall_seconds").as_double();
  } else {
    throw SimError("unknown event: " + event);
  }
  return v;
}

std::string human_cycles(double cps) {
  char buf[32];
  if (cps >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.1fM", cps / 1e6);
  } else if (cps >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.1fk", cps / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f", cps);
  }
  return buf;
}

void render(const JsonValue& v) {
  const std::string event = v.at("event").as_string();
  if (event == "start") {
    std::printf("wecsim-top: stream from pid %lld (interval %llu ms)\n",
                static_cast<long long>(v.at("pid").as_i64()),
                static_cast<unsigned long long>(v.at("interval_ms").as_u64()));
  } else if (event == "heartbeat") {
    std::printf(
        "[%8.1fs] %llu/%llu done | %llu running, %llu pending, "
        "%llu quarantined | cache %llu, replay %llu, retries %llu | "
        "%s cyc/s | ETA %.0fs\n",
        v.at("elapsed_seconds").as_double(),
        static_cast<unsigned long long>(v.at("done").as_u64()),
        static_cast<unsigned long long>(v.at("total").as_u64()),
        static_cast<unsigned long long>(v.at("running").as_u64()),
        static_cast<unsigned long long>(v.at("pending").as_u64()),
        static_cast<unsigned long long>(v.at("quarantined").as_u64()),
        static_cast<unsigned long long>(v.at("cache_hits").as_u64()),
        static_cast<unsigned long long>(v.at("replayed").as_u64()),
        static_cast<unsigned long long>(v.at("retries").as_u64()),
        human_cycles(v.at("sim_cycles_per_second").as_double()).c_str(),
        v.at("eta_seconds").as_double());
    if (v.has("skipped_cycles_total")) {
      const double skipped_pct = v.at("skipped_pct").as_double();
      const uint64_t windows = v.at("sample_windows").as_u64();
      if (skipped_pct > 0.0 || windows > 0) {
        std::printf("    skip: %.1f%% of cycles fast-forwarded",
                    skipped_pct);
        if (windows > 0) {
          std::printf(" | sampled windows: %llu",
                      static_cast<unsigned long long>(windows));
        }
        std::printf("\n");
      }
    }
    if (v.has("profile_top")) {
      std::printf("    profile:");
      for (const JsonValue& p : v.at("profile_top").items()) {
        std::printf(" %s=%.2fs", p.at("phase").as_string().c_str(),
                    p.at("seconds").as_double());
      }
      std::printf("\n");
    }
    for (const JsonValue& worker : v.at("workers").items()) {
      if (worker.at("state").as_string() != "running") continue;
      std::printf("    w%llu: %s (%.1fs)\n",
                  static_cast<unsigned long long>(worker.at("worker").as_u64()),
                  worker.at("point").as_string().c_str(),
                  worker.at("seconds").as_double());
    }
  } else if (event == "point") {
    std::printf("  %-11s %s (%llu cycles)\n",
                (v.at("outcome").as_string() + ":").c_str(),
                v.at("point").as_string().c_str(),
                static_cast<unsigned long long>(v.at("cycles").as_u64()));
  } else if (event == "finish") {
    std::printf(
        "finished in %.1fs: %llu point(s), %llu fresh, %llu cached, "
        "%llu replayed, %llu quarantined\n",
        v.at("wall_seconds").as_double(),
        static_cast<unsigned long long>(v.at("done").as_u64()),
        static_cast<unsigned long long>(v.at("fresh").as_u64()),
        static_cast<unsigned long long>(v.at("cache_hits").as_u64()),
        static_cast<unsigned long long>(v.at("replayed").as_u64()),
        static_cast<unsigned long long>(v.at("quarantined").as_u64()));
  }
  std::fflush(stdout);
}

int run_check(const std::string& path) {
  JsonlTailReader reader(path);
  if (!reader.ok()) {
    std::fprintf(stderr, "wecsim-top: cannot open %s\n", path.c_str());
    return 1;
  }
  size_t lines = 0, heartbeats = 0;
  bool saw_start = false, saw_finish = false;
  std::string line;
  size_t lineno = 0;
  for (;;) {
    const JsonlTailReader::Status st = reader.next(line);
    if (st == JsonlTailReader::Status::kTorn) {
      // A torn tail is a write in progress (or a crash mid-append), not a
      // schema violation: every validated event is '\n'-terminated.
      std::fprintf(stderr,
                   "wecsim-top: %s: ignoring torn trailing line (%zu bytes)\n",
                   path.c_str(), reader.torn_bytes());
      break;
    }
    if (st == JsonlTailReader::Status::kEof) break;
    ++lineno;
    if (line.empty()) continue;
    try {
      const JsonValue v = validate_line(line);
      const std::string event = v.at("event").as_string();
      if (event == "start") saw_start = true;
      if (event == "heartbeat") ++heartbeats;
      if (event == "finish") saw_finish = true;
      ++lines;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "wecsim-top: %s:%zu: %s\n", path.c_str(), lineno,
                   e.what());
      return 1;
    }
  }
  if (!saw_start || heartbeats == 0) {
    std::fprintf(stderr,
                 "wecsim-top: %s: incomplete stream (start: %s, "
                 "heartbeats: %zu)\n",
                 path.c_str(), saw_start ? "yes" : "no", heartbeats);
    return 1;
  }
  std::printf("%s: %zu well-formed event(s), %zu heartbeat(s)%s\n",
              path.c_str(), lines, heartbeats,
              saw_finish ? ", finished" : "");
  return 0;
}

int run_render(const std::string& path, bool follow) {
  JsonlTailReader reader(path);
  if (!reader.ok()) {
    std::fprintf(stderr, "wecsim-top: cannot open %s\n", path.c_str());
    return 1;
  }
  std::string line;
  for (;;) {
    const JsonlTailReader::Status st = reader.next(line);
    if (st == JsonlTailReader::Status::kLine) {
      if (line.empty()) continue;
      try {
        const JsonValue v = validate_line(line);
        render(v);
        if (v.at("event").as_string() == "finish") return 0;
      } catch (const std::exception& e) {
        std::fprintf(stderr, "wecsim-top: skipping bad line: %s\n", e.what());
      }
      continue;
    }
    if (!follow) {
      if (st == JsonlTailReader::Status::kTorn) {
        std::fprintf(stderr,
                     "wecsim-top: ignoring torn trailing line (%zu bytes)\n",
                     reader.torn_bytes());
      }
      return 0;
    }
    // Tail mode: poll until the writer appends more. A torn tail is a
    // write in progress — wait for its '\n' rather than mis-parsing it.
    ::usleep(200 * 1000);
  }
}

/// --service: a one-shot federation dashboard for a wecsimd state dir.
/// Finalized jobs render from their provenance.json sidecar; in-flight
/// jobs render live from their sweep journal (done entries tagged
/// "stolen"/cached are classified the same way the daemon does).
int run_service_view(const std::string& state_dir) {
  const fs::path jobs_dir = fs::path(state_dir) / "jobs";
  std::error_code ec;
  if (!fs::is_directory(jobs_dir, ec)) {
    std::fprintf(stderr, "wecsim-top: %s is not a wecsimd state dir\n",
                 state_dir.c_str());
    return 1;
  }
  std::vector<std::string> ids;
  for (const auto& entry : fs::directory_iterator(jobs_dir, ec)) {
    if (entry.is_directory()) ids.push_back(entry.path().filename().string());
  }
  std::sort(ids.begin(), ids.end());
  if (ids.empty()) {
    std::printf("no jobs under %s\n", state_dir.c_str());
    return 0;
  }
  for (const std::string& id : ids) {
    std::map<std::string, uint64_t> by_provenance;
    std::vector<std::pair<std::string, std::string>> points;  // key -> tag
    uint64_t done = 0, failed = 0, pending = 0;
    const fs::path prov_path = jobs_dir / id / "provenance.json";
    std::ifstream prov(prov_path, std::ios::binary);
    if (prov.good()) {
      std::stringstream buf;
      buf << prov.rdbuf();
      try {
        const JsonValue v = parse_json(buf.str());
        for (const JsonValue& p : v.at("points").items()) {
          const std::string state = p.at("state").as_string();
          const std::string tag = p.at("provenance").as_string();
          state == "failed" ? ++failed : ++done;
          ++by_provenance[tag.empty() ? "unknown" : tag];
          points.emplace_back(p.at("key").as_string(), tag);
        }
      } catch (const std::exception& e) {
        std::fprintf(stderr, "wecsim-top: %s: %s\n", prov_path.c_str(),
                     e.what());
        continue;
      }
    } else {
      // No sidecar yet: the job is still in flight somewhere. Classify
      // straight from the journal.
      const JournalReplay replay = JournalReplay::load(
          (jobs_dir / id / "sweep.journal.jsonl").string());
      for (const auto& [key, entry] : replay.points) {
        std::string tag;
        if (entry.state == JournalReplay::State::kDone) {
          ++done;
          tag = entry.via == "stolen" ? "stolen"
                                      : (entry.fresh ? "hot" : "cached");
        } else if (entry.state == JournalReplay::State::kFailed) {
          ++failed;
          tag = "hot";
        } else {
          ++pending;
          tag = entry.state == JournalReplay::State::kRunning ? "running"
                                                              : "queued";
        }
        if (entry.state == JournalReplay::State::kDone ||
            entry.state == JournalReplay::State::kFailed) {
          ++by_provenance[tag];
        }
        points.emplace_back(key.second, tag);
      }
    }
    std::printf("%s: %llu done, %llu failed", id.c_str(),
                static_cast<unsigned long long>(done),
                static_cast<unsigned long long>(failed));
    if (pending > 0) {
      std::printf(", %llu pending", static_cast<unsigned long long>(pending));
    }
    std::printf(" |");
    for (const char* tag : {"hot", "cached", "resumed", "stolen"}) {
      const auto it = by_provenance.find(tag);
      if (it != by_provenance.end()) {
        std::printf(" %s=%llu", tag,
                    static_cast<unsigned long long>(it->second));
      }
    }
    std::printf("\n");
    for (const auto& [key, tag] : points) {
      std::printf("    %-9s %s\n", (tag + ":").c_str(), key.c_str());
    }
  }
  return 0;
}

int top_main(int argc, char** argv) {
  bool once = false, check = false, service = false;
  std::string target;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--once") {
      once = true;
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--service") {
      service = true;
    } else if (arg == "--help" || arg == "-h") {
      return usage();
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else if (target.empty()) {
      target = arg;
    } else {
      return usage();
    }
  }
  if (target.empty()) return usage();
  if (service) return run_service_view(target);
  const std::string path = resolve_stream(target);
  if (path.empty()) {
    std::fprintf(stderr, "wecsim-top: no *.progress.jsonl under %s\n",
                 target.c_str());
    return 1;
  }
  if (check) return run_check(path);
  return run_render(path, /*follow=*/!once);
}

}  // namespace
}  // namespace wecsim

int main(int argc, char** argv) { return wecsim::top_main(argc, argv); }
