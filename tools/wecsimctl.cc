// wecsimctl — command-line client for wecsimd (docs/SERVICE.md).
//
//   wecsimctl --socket PATH submit --client C --name N --workload W
//             [--scale S] [--seed S] [--priority P]
//             --point KEY=CONFIG[:TUS[:MEMLAT]] [--point ...]
//   wecsimctl --socket PATH status <job>
//   wecsimctl --socket PATH wait <job> [--timeout SEC]
//   wecsimctl --socket PATH health
//   wecsimctl --socket PATH drain
//
// --socket defaults to WECSIM_SERVICE_SOCKET. The daemon's one-line JSON
// reply is printed verbatim to stdout. Exit codes: 0 success, 1
// usage/transport errors, 4 submission rejected (quota / queue depth /
// draining) — retriable, see the reply's retry_after_ms.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/error.h"
#include "service/client.h"

namespace wecsim {
namespace {

constexpr int kExitRejected = 4;

int usage() {
  std::fprintf(
      stderr,
      "usage: wecsimctl --socket PATH <command> [...]\n"
      "  submit --client C --name N --workload W [--scale S] [--seed S]\n"
      "         [--priority P] --point KEY=CONFIG[:TUS[:MEMLAT]] ...\n"
      "  status <job>\n"
      "  wait <job> [--timeout SEC]\n"
      "  health\n"
      "  drain\n");
  return 1;
}

bool parse_point(const std::string& text, PointSpec* out, std::string* error) {
  const size_t eq = text.find('=');
  if (eq == std::string::npos || eq == 0) {
    *error = "--point expects KEY=CONFIG[:TUS[:MEMLAT]], got '" + text + "'";
    return false;
  }
  out->key = text.substr(0, eq);
  const std::string rest = text.substr(eq + 1);
  std::vector<std::string> parts;
  size_t start = 0;
  for (;;) {
    const size_t colon = rest.find(':', start);
    parts.push_back(rest.substr(start, colon == std::string::npos
                                           ? std::string::npos
                                           : colon - start));
    if (colon == std::string::npos) break;
    start = colon + 1;
  }
  if (parts.size() > 3 || parts[0].empty()) {
    *error = "--point expects KEY=CONFIG[:TUS[:MEMLAT]], got '" + text + "'";
    return false;
  }
  out->config = parts[0];
  for (size_t i = 1; i < parts.size(); ++i) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(parts[i].c_str(), &end, 10);
    if (end == parts[i].c_str() || *end != '\0') {
      *error = "--point: '" + parts[i] + "' is not an integer in '" + text +
               "'";
      return false;
    }
    if (i == 1) out->tus = static_cast<uint32_t>(v);
    if (i == 2) out->mem_latency = static_cast<uint32_t>(v);
  }
  return true;
}

/// Prints the raw reply; maps it to the documented exit code.
int finish(const JsonValue& reply, const std::string& raw) {
  std::printf("%s\n", raw.c_str());
  if (reply.at("ok").as_bool()) return 0;
  const std::string error = reply.at("error").as_string();
  if (error == "quota_exceeded" || error == "queue_full" ||
      error == "draining") {
    return kExitRejected;
  }
  return 1;
}

int ctl_main(int argc, char** argv) {
  std::string socket;
  if (const char* env = std::getenv("WECSIM_SERVICE_SOCKET")) socket = env;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--socket") {
      if (i + 1 >= argc) return usage();
      socket = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      return usage();
    } else {
      args.push_back(arg);
    }
  }
  if (socket.empty() || args.empty()) return usage();
  const std::string command = args[0];

  try {
    ServiceClient client(socket);
    std::string raw;
    if (command == "submit") {
      JobSpec spec;
      spec.scale = 1;
      for (size_t i = 1; i < args.size(); ++i) {
        auto next = [&]() -> const std::string* {
          return i + 1 < args.size() ? &args[++i] : nullptr;
        };
        const std::string& a = args[i];
        const std::string* v = nullptr;
        if (a == "--client" && (v = next()) != nullptr) {
          spec.client = *v;
        } else if (a == "--name" && (v = next()) != nullptr) {
          spec.name = *v;
        } else if (a == "--workload" && (v = next()) != nullptr) {
          spec.workload = *v;
        } else if (a == "--scale" && (v = next()) != nullptr) {
          spec.scale =
              static_cast<uint32_t>(std::strtoul(v->c_str(), nullptr, 10));
        } else if (a == "--seed" && (v = next()) != nullptr) {
          spec.seed =
              static_cast<uint32_t>(std::strtoul(v->c_str(), nullptr, 10));
        } else if (a == "--priority" && (v = next()) != nullptr) {
          spec.priority =
              static_cast<uint32_t>(std::strtoul(v->c_str(), nullptr, 10));
        } else if (a == "--point" && (v = next()) != nullptr) {
          PointSpec point;
          std::string error;
          if (!parse_point(*v, &point, &error)) {
            std::fprintf(stderr, "wecsimctl: %s\n", error.c_str());
            return 1;
          }
          spec.points.push_back(std::move(point));
        } else {
          return usage();
        }
      }
      const JsonValue reply = client.request(submit_request(spec), &raw);
      return finish(reply, raw);
    }
    if (command == "status") {
      if (args.size() != 2) return usage();
      const JsonValue reply = client.request(status_request(args[1]), &raw);
      return finish(reply, raw);
    }
    if (command == "wait") {
      if (args.size() < 2) return usage();
      double timeout_s = 600.0;
      for (size_t i = 2; i + 1 < args.size(); i += 2) {
        if (args[i] == "--timeout") {
          timeout_s = std::strtod(args[i + 1].c_str(), nullptr);
        } else {
          return usage();
        }
      }
      client.wait(args[1], timeout_s);  // throws on timeout
      const JsonValue reply = client.request(status_request(args[1]), &raw);
      return finish(reply, raw);
    }
    if (command == "health") {
      const JsonValue reply = client.request(health_request(), &raw);
      return finish(reply, raw);
    }
    if (command == "drain") {
      const JsonValue reply = client.request(drain_request(), &raw);
      return finish(reply, raw);
    }
    return usage();
  } catch (const SimError& e) {
    std::fprintf(stderr, "wecsimctl: %s\n", e.what());
    return 1;
  }
}

}  // namespace
}  // namespace wecsim

int main(int argc, char** argv) { return wecsim::ctl_main(argc, argv); }
