// wecsimctl — command-line client for wecsimd (docs/SERVICE.md).
//
//   wecsimctl [conn] submit --client C --name N --workload W
//             [--scale S] [--seed S] [--priority P] [--request-id RID]
//             --point KEY=CONFIG[:TUS[:MEMLAT]] [--point ...]
//   wecsimctl [conn] status <job>
//   wecsimctl [conn] wait <job> [--timeout SEC]
//   wecsimctl [conn] health
//   wecsimctl [conn] drain
//
// Connection options ([conn], before the command):
//   --socket PATH       one endpoint: Unix socket path
//   --endpoints LIST    comma-separated failover list; each entry is a
//                       socket path (contains '/') or a TCP host:port
//   --timeout-ms N      per-request deadline (connect + send + reply)
//   --retries N         transport-error retries per endpoint (default 2,
//                       exponential backoff with seeded jitter)
//
// Defaults come from WECSIM_SERVICE_ENDPOINTS, then WECSIM_SERVICE_SOCKET.
// Endpoints are tried in order; the next one is tried when the current is
// unreachable, times out, or reports itself degraded. A submit is assigned
// a request id (yours via --request-id, or a generated one) so retries and
// failover re-sends are idempotent — the daemons dedup on it, so a retried
// submit never duplicates a job.
//
// The daemon's one-line JSON reply is printed verbatim to stdout. Exit
// codes: 0 success, 1 usage/hard errors, 4 submission rejected but
// retriable (quota / queue depth / draining / degraded — see the reply's
// retry_after_ms), 5 deadline expired or every endpoint unreachable.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/error.h"
#include "harness/env.h"
#include "service/client.h"

namespace wecsim {
namespace {

constexpr int kExitRejected = 4;
constexpr int kExitUnreachable = 5;

int usage() {
  std::fprintf(
      stderr,
      "usage: wecsimctl [--socket PATH | --endpoints LIST] [--timeout-ms N]\n"
      "                 [--retries N] <command> [...]\n"
      "  submit --client C --name N --workload W [--scale S] [--seed S]\n"
      "         [--priority P] [--request-id RID]\n"
      "         --point KEY=CONFIG[:TUS[:MEMLAT]] ...\n"
      "  status <job>\n"
      "  wait <job> [--timeout SEC]\n"
      "  health\n"
      "  drain\n");
  return 1;
}

bool parse_point(const std::string& text, PointSpec* out, std::string* error) {
  const size_t eq = text.find('=');
  if (eq == std::string::npos || eq == 0) {
    *error = "--point expects KEY=CONFIG[:TUS[:MEMLAT]], got '" + text + "'";
    return false;
  }
  out->key = text.substr(0, eq);
  const std::string rest = text.substr(eq + 1);
  std::vector<std::string> parts;
  size_t start = 0;
  for (;;) {
    const size_t colon = rest.find(':', start);
    parts.push_back(rest.substr(start, colon == std::string::npos
                                           ? std::string::npos
                                           : colon - start));
    if (colon == std::string::npos) break;
    start = colon + 1;
  }
  if (parts.size() > 3 || parts[0].empty()) {
    *error = "--point expects KEY=CONFIG[:TUS[:MEMLAT]], got '" + text + "'";
    return false;
  }
  out->config = parts[0];
  for (size_t i = 1; i < parts.size(); ++i) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(parts[i].c_str(), &end, 10);
    if (end == parts[i].c_str() || *end != '\0') {
      *error = "--point: '" + parts[i] + "' is not an integer in '" + text +
               "'";
      return false;
    }
    if (i == 1) out->tus = static_cast<uint32_t>(v);
    if (i == 2) out->mem_latency = static_cast<uint32_t>(v);
  }
  return true;
}

/// Prints the raw reply; maps it to the documented exit code.
int finish(const JsonValue& reply, const std::string& raw) {
  std::printf("%s\n", raw.c_str());
  if (reply.at("ok").as_bool()) return 0;
  const std::string error = reply.at("error").as_string();
  if (error == "quota_exceeded" || error == "queue_full" ||
      error == "draining" || error == "degraded") {
    return kExitRejected;
  }
  return 1;
}

struct ConnOptions {
  std::vector<std::string> endpoints;
  uint32_t timeout_ms = 0;
  uint32_t retries = 2;
};

/// Sends `line` to the first endpoint that answers, failing over on
/// transport errors, timeouts, and "degraded" replies. A degraded reply is
/// printed (exit 4) only when no healthier endpoint exists.
int run_request(const ConnOptions& conn, const std::string& line) {
  std::string degraded_raw;
  JsonValue degraded_reply;
  bool have_degraded = false;
  std::string last_error;
  bool timed_out = false;
  for (const std::string& endpoint : conn.endpoints) {
    try {
      ServiceClient client(endpoint);
      client.set_timeout_ms(conn.timeout_ms);
      client.set_retries(conn.retries);
      std::string raw;
      const JsonValue reply = client.request(line, &raw);
      if (!reply.at("ok").as_bool() &&
          reply.at("error").as_string() == "degraded") {
        // This daemon can no longer persist anything; remember the reply
        // but prefer a peer that still can.
        degraded_raw = raw;
        degraded_reply = reply;
        have_degraded = true;
        continue;
      }
      return finish(reply, raw);
    } catch (const ServiceTimeout& e) {
      timed_out = true;
      last_error = e.what();
    } catch (const SimError& e) {
      last_error = e.what();
    }
  }
  if (have_degraded) return finish(degraded_reply, degraded_raw);
  std::fprintf(stderr, "wecsimctl: %s\n",
               last_error.empty() ? "no endpoints configured"
                                  : last_error.c_str());
  return timed_out ? kExitUnreachable
                   : (conn.endpoints.empty() ? 1 : kExitUnreachable);
}

int ctl_main(int argc, char** argv) {
  ConnOptions conn;
  std::vector<std::string> args;
  std::vector<std::string> errors;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--socket") {
      if (i + 1 >= argc) return usage();
      conn.endpoints.push_back(argv[++i]);
    } else if (arg == "--endpoints") {
      if (i + 1 >= argc) return usage();
      for (std::string& ep :
           parse_endpoint_list(argv[++i], "--endpoints", &errors)) {
        conn.endpoints.push_back(std::move(ep));
      }
    } else if (arg == "--timeout-ms") {
      if (i + 1 >= argc) return usage();
      char* end = nullptr;
      const unsigned long long v = std::strtoull(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || v < 1 || v > 3600000) {
        std::fprintf(stderr,
                     "wecsimctl: --timeout-ms expects an integer in "
                     "[1, 3600000], got '%s'\n",
                     argv[i]);
        return 1;
      }
      conn.timeout_ms = static_cast<uint32_t>(v);
    } else if (arg == "--retries") {
      if (i + 1 >= argc) return usage();
      char* end = nullptr;
      const unsigned long long v = std::strtoull(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || v > 100) {
        std::fprintf(stderr,
                     "wecsimctl: --retries expects an integer in [0, 100], "
                     "got '%s'\n",
                     argv[i]);
        return 1;
      }
      conn.retries = static_cast<uint32_t>(v);
    } else if (arg == "--help" || arg == "-h") {
      return usage();
    } else {
      args.push_back(arg);
    }
  }
  if (conn.endpoints.empty()) {
    if (const char* env = std::getenv("WECSIM_SERVICE_ENDPOINTS")) {
      if (*env != '\0') {
        conn.endpoints = parse_endpoint_list(env, "WECSIM_SERVICE_ENDPOINTS",
                                             &errors);
      }
    }
  }
  if (conn.endpoints.empty()) {
    if (const char* env = std::getenv("WECSIM_SERVICE_SOCKET")) {
      if (*env != '\0') conn.endpoints.push_back(env);
    }
  }
  if (!errors.empty()) {
    for (const std::string& e : errors) {
      std::fprintf(stderr, "wecsimctl: %s\n", e.c_str());
    }
    return 1;
  }
  if (conn.endpoints.empty() || args.empty()) return usage();
  const std::string command = args[0];

  try {
    if (command == "submit") {
      JobSpec spec;
      spec.scale = 1;
      std::string rid;
      for (size_t i = 1; i < args.size(); ++i) {
        auto next = [&]() -> const std::string* {
          return i + 1 < args.size() ? &args[++i] : nullptr;
        };
        const std::string& a = args[i];
        const std::string* v = nullptr;
        if (a == "--client" && (v = next()) != nullptr) {
          spec.client = *v;
        } else if (a == "--name" && (v = next()) != nullptr) {
          spec.name = *v;
        } else if (a == "--workload" && (v = next()) != nullptr) {
          spec.workload = *v;
        } else if (a == "--scale" && (v = next()) != nullptr) {
          spec.scale =
              static_cast<uint32_t>(std::strtoul(v->c_str(), nullptr, 10));
        } else if (a == "--seed" && (v = next()) != nullptr) {
          spec.seed =
              static_cast<uint32_t>(std::strtoul(v->c_str(), nullptr, 10));
        } else if (a == "--priority" && (v = next()) != nullptr) {
          spec.priority =
              static_cast<uint32_t>(std::strtoul(v->c_str(), nullptr, 10));
        } else if (a == "--request-id" && (v = next()) != nullptr) {
          rid = *v;
        } else if (a == "--point" && (v = next()) != nullptr) {
          PointSpec point;
          std::string error;
          if (!parse_point(*v, &point, &error)) {
            std::fprintf(stderr, "wecsimctl: %s\n", error.c_str());
            return 1;
          }
          spec.points.push_back(std::move(point));
        } else {
          return usage();
        }
      }
      // Always submit under a request id: with retries and failover in
      // play, the send may be repeated, and the rid is what keeps "sent
      // twice" from becoming "admitted twice".
      if (rid.empty()) rid = make_request_id();
      return run_request(conn, submit_request(spec, rid));
    }
    if (command == "status") {
      if (args.size() != 2) return usage();
      return run_request(conn, status_request(args[1]));
    }
    if (command == "wait") {
      if (args.size() < 2) return usage();
      double timeout_s = 600.0;
      for (size_t i = 2; i + 1 < args.size(); i += 2) {
        if (args[i] == "--timeout") {
          timeout_s = std::strtod(args[i + 1].c_str(), nullptr);
        } else {
          return usage();
        }
      }
      std::string last_error;
      for (const std::string& endpoint : conn.endpoints) {
        try {
          ServiceClient client(endpoint);
          client.set_timeout_ms(conn.timeout_ms);
          client.wait(args[1], timeout_s);  // throws on timeout
          std::string raw;
          const JsonValue reply = client.request(status_request(args[1]),
                                                 &raw);
          return finish(reply, raw);
        } catch (const SimError& e) {
          last_error = e.what();
        }
      }
      std::fprintf(stderr, "wecsimctl: %s\n", last_error.c_str());
      return kExitUnreachable;
    }
    if (command == "health") {
      return run_request(conn, health_request());
    }
    if (command == "drain") {
      return run_request(conn, drain_request());
    }
    return usage();
  } catch (const ServiceTimeout& e) {
    std::fprintf(stderr, "wecsimctl: %s\n", e.what());
    return kExitUnreachable;
  } catch (const SimError& e) {
    std::fprintf(stderr, "wecsimctl: %s\n", e.what());
    return 1;
  }
}

}  // namespace
}  // namespace wecsim

int main(int argc, char** argv) { return wecsim::ctl_main(argc, argv); }
