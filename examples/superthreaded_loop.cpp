// Writing and running a superthreaded (thread-pipelined) loop by hand: a
// parallel prefix-scaled vector update with a cross-iteration recurrence
// carried through a target store, executed on 1..8 thread units.
//
// The loop computes, over chunks of 16 elements:
//     s      = s * 0.5 + a[i]        (the serial recurrence, via TSADDR)
//     b[i]   = s
// followed by a sequential reduction of b per chunk.
//
//   $ ./examples/superthreaded_loop
#include <cstdio>

#include "core/sim_config.h"
#include "core/simulator.h"
#include "isa/assembler.h"

using namespace wecsim;

static const char* kProgram = R"(
  .equ N, 192
  .data
a:    .space 1536
b:    .space 1536
s:    .double 0.0
sum:  .dword 0
  .text
entry:
  li   r1, 0
  li   r3, N
outer:
  addi r2, r1, 16        # chunk limit
  begin
  j    body
body:
  # continuation stage: claim index, fork successor
  addi r5, r1, 1
  mv   r4, r1
  mv   r1, r5
  forksp body
  # TSAG stage: this iteration will update the recurrence cell s
  la   r6, s
  tsaddr r6, 0
  tsagd
  # computation: s = s*0.5 + a[my]; b[my] = s
  la   r7, a
  slli r8, r4, 3
  add  r7, r7, r8
  fld  f1, 0(r7)         # a[my]
  fld  f2, 0(r6)         # s   (stalls until the upstream value arrives)
  fli  f3, 0.5
  fmul f2, f2, f3
  fadd f2, f2, f1
  fsd  f2, 0(r6)         # target store: forwarded to the successor
  la   r9, b
  add  r9, r9, r8
  fsd  f2, 0(r9)
  # exit check
  addi r10, r4, 1
  bge  r10, r2, exit
  thend
exit:
  abort
  endpar
  # sequential glue: fold the chunk of b into sum
  la   r11, b
  subi r12, r2, 16
  slli r13, r12, 3
  add  r11, r11, r13
  li   r14, 0
  la   r15, sum
  fld  f4, 0(r15)
fold:
  fld  f5, 0(r11)
  fadd f4, f4, f5
  addi r11, r11, 8
  addi r14, r14, 1
  li   r16, 16
  blt  r14, r16, fold
  fsd  f4, 0(r15)
  blt  r2, r3, outer
  halt
)";

int main() {
  Program program = assemble(kProgram);
  std::printf("thread-pipelined loop, 192 iterations in chunks of 16\n\n");
  std::printf("%4s %10s %8s %8s %10s %14s\n", "TUs", "cycles", "speedup",
              "forks", "ring msgs", "sum (check)");

  Cycle base = 0;
  for (uint32_t tus : {1u, 2u, 4u, 8u}) {
    Simulator sim(program, make_paper_config(PaperConfig::kOrig, tus));
    for (int i = 0; i < 192; ++i) {
      sim.memory().write_f64(program.symbol("a") + 8 * i, 0.125 * (i % 17));
    }
    SimResult result = sim.run();
    if (tus == 1) base = result.cycles;
    std::printf("%4u %10llu %7.2fx %8llu %10llu %14.4f\n", tus,
                static_cast<unsigned long long>(result.cycles),
                static_cast<double>(base) / result.cycles,
                static_cast<unsigned long long>(result.forks),
                static_cast<unsigned long long>(
                    sim.stats().value("sta.ring_msgs")),
                sim.memory().read_f64(program.symbol("sum")));
  }
  std::printf(
      "\nThe recurrence serializes iterations through the ring, so scaling "
      "is sublinear —\nexactly the behaviour the paper describes for "
      "dependence-carrying loops.\n");
  return 0;
}
