// Quickstart: assemble a small program, run it on the superthreaded
// simulator, and read results back — the smallest end-to-end use of the
// wecsim public API.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "core/sim_config.h"
#include "core/simulator.h"
#include "isa/assembler.h"
#include "isa/disasm.h"

using namespace wecsim;

// Dot product of two 256-element vectors, written directly in wecsim
// assembly. Sequential code only — see superthreaded_loop.cpp for a
// parallelized example.
static const char* kProgram = R"(
  .equ N, 256
  .data
a:  .space 2048
b:  .space 2048
out:
  .dword 0
  .text
entry:
  la   r1, a
  la   r2, b
  li   r3, 0            # i
  li   r4, N
  fli  f1, 0.0          # acc
loop:
  fld  f2, 0(r1)
  fld  f3, 0(r2)
  fmul f4, f2, f3
  fadd f1, f1, f4
  addi r1, r1, 8
  addi r2, r2, 8
  addi r3, r3, 1
  blt  r3, r4, loop
  la   r5, out
  fsd  f1, 0(r5)
  halt
)";

int main() {
  // 1. Assemble.
  Program program = assemble(kProgram);
  std::printf("assembled %zu instructions; first few:\n%s\n",
              program.num_instructions(),
              disassemble(program).substr(0, 280).c_str());

  // 2. Configure a machine: the paper's proposed configuration
  //    (wrong-path + wrong-thread execution with a Wrong Execution Cache),
  //    one thread unit since this program is sequential.
  StaConfig config = make_paper_config(PaperConfig::kWthWpWec, /*num_tus=*/1);

  // 3. Build the simulator and initialize input data in its memory.
  Simulator sim(program, config);
  for (int i = 0; i < 256; ++i) {
    sim.memory().write_f64(program.symbol("a") + 8 * i, 1.0 + i * 0.5);
    sim.memory().write_f64(program.symbol("b") + 8 * i, 2.0 - i * 0.25);
  }

  // 4. Run and inspect.
  SimResult result = sim.run();
  std::printf("halted: %s after %llu cycles, %llu instructions committed\n",
              result.halted ? "yes" : "no",
              static_cast<unsigned long long>(result.cycles),
              static_cast<unsigned long long>(result.committed));
  std::printf("dot product = %f\n",
              sim.memory().read_f64(program.symbol("out")));
  std::printf("L1D: %llu accesses, %llu misses (%.2f%% miss rate)\n",
              static_cast<unsigned long long>(result.l1d_accesses),
              static_cast<unsigned long long>(result.l1d_misses),
              100.0 * result.l1d_miss_rate());
  std::printf("branches: %llu (%llu mispredicted)\n",
              static_cast<unsigned long long>(result.branches),
              static_cast<unsigned long long>(result.mispredicts));
  return 0;
}
