// Demonstration of the paper's core claim: letting known-wrong loads run,
// contained by a Wrong Execution Cache, reduces the misses of the *correct*
// execution that follows.
//
// Runs the conflict-heavy 177.mesa analog on four machines — orig, victim
// cache, next-line prefetching, and wth-wp-wec — and prints the miss counts,
// traffic, and speedups side by side.
//
//   $ ./examples/wrong_path_prefetch
#include <cstdio>

#include "core/sim_config.h"
#include "core/simulator.h"
#include "workloads/workload.h"

using namespace wecsim;

namespace {

SimResult run_one(const Workload& workload, PaperConfig config) {
  Simulator sim(workload.program, make_paper_config(config, 8));
  workload.init(sim.memory());
  return sim.run();
}

}  // namespace

int main() {
  WorkloadParams params;
  params.scale = 2;
  Workload workload = make_workload("177.mesa", params);
  std::printf("workload: %s — %s\n\n", workload.name.c_str(),
              workload.description.c_str());

  const PaperConfig configs[] = {PaperConfig::kOrig, PaperConfig::kVc,
                                 PaperConfig::kNlp, PaperConfig::kWthWpWec};
  SimResult results[4];
  for (int i = 0; i < 4; ++i) results[i] = run_one(workload, configs[i]);

  std::printf("%-12s %10s %12s %12s %10s %10s\n", "config", "cycles",
              "L1 misses", "L1 traffic", "side hits", "speedup");
  for (int i = 0; i < 4; ++i) {
    const SimResult& r = results[i];
    const double speedup =
        static_cast<double>(results[0].cycles) / static_cast<double>(r.cycles);
    std::printf("%-12s %10llu %12llu %12llu %10llu %9.1f%%\n",
                paper_config_name(configs[i]),
                static_cast<unsigned long long>(r.cycles),
                static_cast<unsigned long long>(r.l1d_misses),
                static_cast<unsigned long long>(r.l1d_accesses),
                static_cast<unsigned long long>(r.side_hits),
                100.0 * (speedup - 1.0));
  }

  const SimResult& wec = results[3];
  std::printf(
      "\nwth-wp-wec issued %llu wrong-execution L1 accesses, filled the WEC "
      "%llu times from wrong execution,\nand launched %llu next-line "
      "prefetches — that is the indirect prefetching the paper describes.\n",
      static_cast<unsigned long long>(wec.l1d_wrong_accesses),
      static_cast<unsigned long long>(wec.wec_wrong_fills),
      static_cast<unsigned long long>(wec.prefetches));
  return 0;
}
