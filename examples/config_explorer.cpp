// Command-line exploration of the full configuration space: pick a
// benchmark, a paper configuration, a thread-unit count, and optional cache
// overrides, and get the paper's measurements for that point.
//
//   $ ./examples/config_explorer 181.mcf wth-wp-wec 8
//   $ ./examples/config_explorer 177.mesa vc 8 --l1=4k --wec=16 --scale=2
//   $ ./examples/config_explorer --list
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/sim_config.h"
#include "core/simulator.h"
#include "workloads/workload.h"

using namespace wecsim;

namespace {

void usage() {
  std::printf(
      "usage: config_explorer <benchmark> <config> <num_tus> [options]\n"
      "       config_explorer --list\n\n"
      "  benchmark: 175.vpr 164.gzip 181.mcf 197.parser 183.equake 177.mesa\n"
      "  config:    orig vc wp wth wth-wp wth-wp-vc wth-wp-wec nlp\n"
      "  options:   --l1=<KB>k    L1 data cache size (default 8k)\n"
      "             --assoc=<N>   L1 associativity (default 1)\n"
      "             --l2=<KB>k    shared L2 size (default 512k)\n"
      "             --wec=<N>     WEC/vc/prefetch-buffer entries (default 8)\n"
      "             --scale=<N>   workload scale (default 4)\n"
      "             --stats       dump every raw counter\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--list") == 0) {
    for (const auto& name : workload_names()) {
      Workload w = make_workload(name, {1, 42});
      std::printf("%-12s %s\n", name.c_str(), w.description.c_str());
    }
    return 0;
  }
  if (argc < 4) {
    usage();
    return 1;
  }

  WorkloadParams params;
  bool dump_stats = false;
  StaConfig config;
  try {
    config = make_paper_config(paper_config_from_name(argv[2]),
                               static_cast<uint32_t>(std::atoi(argv[3])));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  for (int i = 4; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--l1=", 0) == 0) {
      config.mem.l1d.size_bytes = std::strtoull(arg.c_str() + 5, nullptr, 10) * 1024;
    } else if (arg.rfind("--assoc=", 0) == 0) {
      config.mem.l1d.assoc = static_cast<uint32_t>(std::atoi(arg.c_str() + 8));
    } else if (arg.rfind("--l2=", 0) == 0) {
      config.mem.l2.size_bytes = std::strtoull(arg.c_str() + 5, nullptr, 10) * 1024;
    } else if (arg.rfind("--wec=", 0) == 0) {
      config.mem.side_entries = static_cast<uint32_t>(std::atoi(arg.c_str() + 6));
    } else if (arg.rfind("--scale=", 0) == 0) {
      params.scale = static_cast<uint32_t>(std::atoi(arg.c_str() + 8));
    } else if (arg == "--stats") {
      dump_stats = true;
    } else {
      usage();
      return 1;
    }
  }

  try {
    Workload workload = make_workload(argv[1], params);
    Simulator sim(workload.program, config);
    workload.init(sim.memory());
    SimResult r = sim.run();

    std::printf("%s on %s with %u TUs (scale %u)\n", workload.name.c_str(),
                argv[2], config.num_tus, params.scale);
    std::printf("  cycles            %llu%s\n",
                static_cast<unsigned long long>(r.cycles),
                r.halted ? "" : "  (DID NOT HALT)");
    std::printf("  committed instrs  %llu\n",
                static_cast<unsigned long long>(r.committed));
    std::printf("  L1D accesses      %llu (%llu from wrong execution)\n",
                static_cast<unsigned long long>(r.l1d_accesses),
                static_cast<unsigned long long>(r.l1d_wrong_accesses));
    std::printf("  L1D misses        %llu (+%llu wrong-execution misses)\n",
                static_cast<unsigned long long>(r.l1d_misses),
                static_cast<unsigned long long>(r.l1d_wrong_misses));
    std::printf("  side-cache hits   %llu\n",
                static_cast<unsigned long long>(r.side_hits));
    std::printf("  prefetches        %llu\n",
                static_cast<unsigned long long>(r.prefetches));
    std::printf("  L2 accesses       %llu (%llu misses)\n",
                static_cast<unsigned long long>(r.l2_accesses),
                static_cast<unsigned long long>(r.l2_misses));
    std::printf("  branches/mispred  %llu / %llu\n",
                static_cast<unsigned long long>(r.branches),
                static_cast<unsigned long long>(r.mispredicts));
    std::printf("  forks / wrong-thr %llu / %llu\n",
                static_cast<unsigned long long>(r.forks),
                static_cast<unsigned long long>(r.wrong_threads));
    if (dump_stats) {
      std::printf("\nraw counters:\n%s", sim.stats().dump().c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
