// Figure 15: sensitivity to the WEC size (4/8/16 entries) compared against
// victim caches of the same sizes. Relative speedup over the 8-TU orig
// baseline.
#include "bench/bench_common.h"

using namespace wecsim;
using namespace wecsim::bench;

namespace {

StaConfig with_side_entries(PaperConfig config, uint32_t entries) {
  StaConfig sta = make_paper_config(config, 8);
  sta.mem.side_entries = entries;
  return sta;
}

}  // namespace

int main(int argc, char** argv) {
  print_header(
      "Figure 15: WEC size vs victim cache size (8 TUs; baseline orig)",
      "wth-wp-vc with a 4-entry victim cache beats orig+16-entry vc, and a "
      "4-entry WEC beats a 16-entry victim cache");

  const PaperConfig kConfigs[] = {PaperConfig::kVc, PaperConfig::kWthWpVc,
                                  PaperConfig::kWthWpWec};
  const uint32_t kEntries[] = {4, 8, 16};
  ParallelExperimentRunner runner(bench_params(), parse_jobs_flag(argc, argv));

  // Submission pre-pass mirroring the measurement loops below.
  for (const auto& name : workload_names()) {
    runner.submit(name, "orig", make_paper_config(PaperConfig::kOrig, 8));
    for (PaperConfig config : kConfigs) {
      for (uint32_t n : kEntries) {
        runner.submit(name,
                      std::string(paper_config_name(config)) + "-e" +
                          std::to_string(n),
                      with_side_entries(config, n));
      }
    }
  }
  bench::run_sweep(runner, argc, argv, "bench_fig15");

  std::vector<std::string> header = {"benchmark"};
  for (PaperConfig config : kConfigs) {
    for (uint32_t n : kEntries) {
      header.push_back(std::string(paper_config_name(config)) + " " +
                       std::to_string(n));
    }
  }
  TextTable table(header);

  std::vector<std::vector<double>> columns(9);
  for (const auto& name : workload_names()) {
    const auto* base =
        runner.try_run(name, "orig", make_paper_config(PaperConfig::kOrig, 8));
    std::vector<std::string> row = {name};
    size_t col = 0;
    for (PaperConfig config : kConfigs) {
      for (uint32_t n : kEntries) {
        const std::string key = std::string(paper_config_name(config)) + "-e" +
                                std::to_string(n);
        const auto* m = runner.try_run(name, key, with_side_entries(config, n));
        const size_t c = col++;
        if (base == nullptr || m == nullptr) {
          row.push_back("n/a");
          continue;
        }
        const double pct =
            relative_speedup_pct(base->sim.cycles, m->sim.cycles);
        columns[c].push_back(1.0 + pct / 100.0);
        row.push_back(TextTable::pct(pct));
      }
    }
    table.add_row(row);
  }
  std::vector<std::string> avg = {"average"};
  for (const auto& col : columns) {
    avg.push_back(avg_pct_cell(col));
  }
  table.add_row(avg);
  std::fputs(table.render().c_str(), stdout);
  return finish_bench(runner, "bench_fig15");
}
