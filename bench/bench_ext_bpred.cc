// Extension experiment (paper Section 7 future work): "the relationship of
// the branch prediction accuracy to the performance of the WEC". Sweeps the
// direction predictor from pessimal to strong and reports (a) the machine's
// misprediction rate and (b) the wth-wp-wec speedup over an orig machine
// with the SAME predictor. More mispredictions mean more wrong-path loads —
// up to the point where recovery costs dominate.
#include "bench/bench_common.h"

using namespace wecsim;
using namespace wecsim::bench;

namespace {

StaConfig with_bpred(PaperConfig config, BpredKind kind) {
  StaConfig sta = make_paper_config(config, 8);
  sta.core.bpred.kind = kind;
  return sta;
}

const char* kind_name(BpredKind kind) {
  switch (kind) {
    case BpredKind::kNotTaken:
      return "nottaken";
    case BpredKind::kTaken:
      return "taken";
    case BpredKind::kBimodal:
      return "bimodal";
    case BpredKind::kGshare:
      return "gshare";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  print_header(
      "Extension: WEC gain vs branch predictor strength (8 TUs; baseline "
      "orig with the same predictor)",
      "not evaluated in the paper (named as future work); weaker predictors "
      "create more wrong-path loads for the WEC to exploit");

  const BpredKind kKinds[] = {BpredKind::kNotTaken, BpredKind::kTaken,
                              BpredKind::kBimodal, BpredKind::kGshare};
  ParallelExperimentRunner runner(bench_params(), parse_jobs_flag(argc, argv));

  // Submission pre-pass mirroring the measurement loops below.
  for (const auto& name : workload_names()) {
    for (BpredKind kind : kKinds) {
      const std::string kn = kind_name(kind);
      runner.submit(name, "orig-" + kn, with_bpred(PaperConfig::kOrig, kind));
      runner.submit(name, "wec-" + kn,
                    with_bpred(PaperConfig::kWthWpWec, kind));
    }
  }
  bench::run_sweep(runner, argc, argv, "bench_ext_bpred");

  std::vector<std::string> header = {"benchmark"};
  for (BpredKind kind : kKinds) {
    header.push_back(std::string(kind_name(kind)) + " mispred");
    header.push_back(std::string(kind_name(kind)) + " wec");
  }
  TextTable table(header);

  std::vector<std::vector<double>> columns(4);
  for (const auto& name : workload_names()) {
    std::vector<std::string> row = {name};
    for (size_t i = 0; i < 4; ++i) {
      const std::string kn = kind_name(kKinds[i]);
      const auto* base = runner.try_run(
          name, "orig-" + kn, with_bpred(PaperConfig::kOrig, kKinds[i]));
      const auto* wec =
          runner.try_run(name, "wec-" + kn,
                         with_bpred(PaperConfig::kWthWpWec, kKinds[i]));
      if (base == nullptr || wec == nullptr) {
        row.push_back("n/a");
        row.push_back("n/a");
        continue;
      }
      const double mispred_rate =
          base->sim.branches == 0
              ? 0.0
              : 100.0 * base->sim.mispredicts / base->sim.branches;
      const double pct =
          relative_speedup_pct(base->sim.cycles, wec->sim.cycles);
      columns[i].push_back(1.0 + pct / 100.0);
      row.push_back(TextTable::pct(mispred_rate));
      row.push_back(TextTable::pct(pct));
    }
    table.add_row(row);
  }
  std::vector<std::string> avg = {"average"};
  for (const auto& col : columns) {
    avg.push_back("");
    avg.push_back(avg_pct_cell(col));
  }
  table.add_row(avg);
  std::fputs(table.render().c_str(), stdout);
  return finish_bench(runner, "bench_ext_bpred");
}
