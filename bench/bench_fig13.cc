// Figure 13: sensitivity to L1 data cache size (4K/8K/16K/32K; WEC fixed at
// 8 entries). Normalized execution time; the per-benchmark baseline (1.0) is
// orig with the 4K L1.
#include "bench/bench_common.h"

using namespace wecsim;
using namespace wecsim::bench;

namespace {

StaConfig with_l1_size(PaperConfig config, uint64_t kb) {
  StaConfig sta = make_paper_config(config, 8);
  sta.mem.l1d.size_bytes = kb * 1024;
  return sta;
}

}  // namespace

int main(int argc, char** argv) {
  print_header(
      "Figure 13: normalized execution time vs L1D size (8 TUs; baseline "
      "orig 4K)",
      "the WEC's relative gain shrinks as the L1 grows; an 8-entry WEC with "
      "an 8K L1 beats a 16K L1 without one, and on average a 4K L1 + WEC "
      "beats a 32K L1 alone");

  const uint64_t kSizes[] = {4, 8, 16, 32};
  ParallelExperimentRunner runner(bench_params(), parse_jobs_flag(argc, argv));

  // Submission pre-pass mirroring the measurement loops below.
  for (const auto& name : workload_names()) {
    runner.submit(name, "orig-4k", with_l1_size(PaperConfig::kOrig, 4));
    for (PaperConfig config : {PaperConfig::kOrig, PaperConfig::kWthWpWec}) {
      for (uint64_t kb : kSizes) {
        runner.submit(name,
                      std::string(paper_config_name(config)) + "-" +
                          std::to_string(kb) + "k",
                      with_l1_size(config, kb));
      }
    }
  }
  bench::run_sweep(runner, argc, argv, "bench_fig13");

  std::vector<std::string> header = {"benchmark"};
  for (PaperConfig config : {PaperConfig::kOrig, PaperConfig::kWthWpWec}) {
    for (uint64_t kb : kSizes) {
      header.push_back(std::string(paper_config_name(config)) + " " +
                       std::to_string(kb) + "k");
    }
  }
  TextTable table(header);

  for (const auto& name : workload_names()) {
    const auto* base =
        runner.try_run(name, "orig-4k", with_l1_size(PaperConfig::kOrig, 4));
    std::vector<std::string> row = {name};
    for (PaperConfig config : {PaperConfig::kOrig, PaperConfig::kWthWpWec}) {
      for (uint64_t kb : kSizes) {
        const std::string key = std::string(paper_config_name(config)) + "-" +
                                std::to_string(kb) + "k";
        const auto* m = runner.try_run(name, key, with_l1_size(config, kb));
        if (base == nullptr || m == nullptr) {
          row.push_back("n/a");
          continue;
        }
        row.push_back(TextTable::num(
            static_cast<double>(m->sim.cycles) / base->sim.cycles, 3));
      }
    }
    table.add_row(row);
  }
  std::fputs(table.render().c_str(), stdout);
  return finish_bench(runner, "bench_fig13");
}
