// Table 2: dynamic instruction counts of the benchmark programs and the
// fraction executed in parallelized regions (functional interpreter runs).
#include "bench/bench_common.h"
#include "func/interpreter.h"

using namespace wecsim;
using namespace wecsim::bench;

int main() {
  print_header(
      "Table 2: dynamic instruction counts and fraction parallelized",
      "whole-benchmark instruction counts with 8.6%-36.1% of instructions "
      "in the manually parallelized loops");

  TextTable table({"benchmark", "total instrs", "parallel instrs",
                   "fraction parallel", "forks", "regions"});
  for (const auto& name : workload_names()) {
    Workload w = make_workload(name, bench_params());
    FlatMemory memory;
    memory.load_program(w.program);
    w.init(memory);
    Interpreter interp(w.program, memory);
    FuncResult r = interp.run();
    if (!r.halted) {
      std::fprintf(stderr, "%s did not halt\n", name.c_str());
      return 1;
    }
    table.add_row({name, std::to_string(r.instrs_total),
                   std::to_string(r.instrs_parallel),
                   TextTable::pct(100.0 * r.fraction_parallel()),
                   std::to_string(r.forks),
                   std::to_string(r.parallel_regions)});
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}
