// Table 2: dynamic instruction counts of the benchmark programs and the
// fraction executed in parallelized regions (functional interpreter runs).
#include "bench/bench_common.h"
#include "func/interpreter.h"

using namespace wecsim;
using namespace wecsim::bench;

int main(int argc, char** argv) {
  print_header(
      "Table 2: dynamic instruction counts and fraction parallelized",
      "whole-benchmark instruction counts with 8.6%-36.1% of instructions "
      "in the manually parallelized loops");

  // Interpreter runs are independent per workload; run them on the worker
  // pool and render the rows in workload order afterwards.
  const std::vector<std::string> names = workload_names();
  std::vector<FuncResult> results(names.size());
  parallel_for(names.size(), resolve_jobs(parse_jobs_flag(argc, argv)),
               [&](size_t i) {
                 Workload w = make_workload(names[i], bench_params());
                 FlatMemory memory;
                 memory.load_program(w.program);
                 w.init(memory);
                 Interpreter interp(w.program, memory);
                 results[i] = interp.run();
               });

  TextTable table({"benchmark", "total instrs", "parallel instrs",
                   "fraction parallel", "forks", "regions"});
  for (size_t i = 0; i < names.size(); ++i) {
    const FuncResult& r = results[i];
    if (!r.halted) {
      std::fprintf(stderr, "%s did not halt\n", names[i].c_str());
      return 1;
    }
    table.add_row({names[i], std::to_string(r.instrs_total),
                   std::to_string(r.instrs_parallel),
                   TextTable::pct(100.0 * r.fraction_parallel()),
                   std::to_string(r.forks),
                   std::to_string(r.parallel_regions)});
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}
