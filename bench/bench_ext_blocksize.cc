// Extension experiment (paper Section 7 future work): "the effects of ...
// the block size". Sweeps the L1D/WEC block size; larger blocks change both
// the conflict behaviour the WEC's victim role fixes and the usefulness of
// its next-line prefetches.
#include "bench/bench_common.h"

using namespace wecsim;
using namespace wecsim::bench;

namespace {

StaConfig with_block(PaperConfig config, uint32_t block) {
  StaConfig sta = make_paper_config(config, 8);
  sta.mem.l1d.block_bytes = block;
  return sta;
}

}  // namespace

int main(int argc, char** argv) {
  print_header(
      "Extension: WEC speedup vs L1D block size (8 TUs)",
      "not evaluated in the paper (named as future work)");

  const uint32_t kBlocks[] = {32, 64, 128};
  ParallelExperimentRunner runner(bench_params(), parse_jobs_flag(argc, argv));

  // Submission pre-pass mirroring the measurement loops below.
  for (const auto& name : workload_names()) {
    for (uint32_t block : kBlocks) {
      runner.submit(name, "orig-b" + std::to_string(block),
                    with_block(PaperConfig::kOrig, block));
      runner.submit(name, "wec-b" + std::to_string(block),
                    with_block(PaperConfig::kWthWpWec, block));
    }
  }
  bench::run_sweep(runner, argc, argv, "bench_ext_blocksize");

  TextTable table({"benchmark", "32B", "64B", "128B"});
  std::vector<std::vector<double>> columns(3);
  for (const auto& name : workload_names()) {
    std::vector<std::string> row = {name};
    for (size_t i = 0; i < 3; ++i) {
      const auto* base =
          runner.try_run(name, "orig-b" + std::to_string(kBlocks[i]),
                         with_block(PaperConfig::kOrig, kBlocks[i]));
      const auto* wec =
          runner.try_run(name, "wec-b" + std::to_string(kBlocks[i]),
                         with_block(PaperConfig::kWthWpWec, kBlocks[i]));
      if (base == nullptr || wec == nullptr) {
        row.push_back("n/a");
        continue;
      }
      const double pct =
          relative_speedup_pct(base->sim.cycles, wec->sim.cycles);
      columns[i].push_back(1.0 + pct / 100.0);
      row.push_back(TextTable::pct(pct));
    }
    table.add_row(row);
  }
  std::vector<std::string> avg = {"average"};
  for (const auto& col : columns) {
    avg.push_back(avg_pct_cell(col));
  }
  table.add_row(avg);
  std::fputs(table.render().c_str(), stdout);
  return finish_bench(runner, "bench_ext_blocksize");
}
