// Figure 12: sensitivity to L1 data cache associativity (direct-mapped vs
// 4-way). Each configuration is compared against the orig processor with the
// SAME associativity. Higher associativity removes conflict misses, which
// kills the victim cache's benefit but leaves the WEC's wrong-execution
// prefetching intact.
#include "bench/bench_common.h"

using namespace wecsim;
using namespace wecsim::bench;

namespace {

StaConfig with_assoc(PaperConfig config, uint32_t assoc) {
  StaConfig sta = make_paper_config(config, 8);
  sta.mem.l1d.assoc = assoc;
  return sta;
}

}  // namespace

int main(int argc, char** argv) {
  print_header(
      "Figure 12: L1 associativity sensitivity (8 TUs; baseline orig of the "
      "same associativity)",
      "at 4-way the vc speedup disappears while wth-wp-wec still provides "
      "significant speedup");

  const PaperConfig kConfigs[] = {PaperConfig::kVc, PaperConfig::kWthWpVc,
                                  PaperConfig::kWthWpWec};
  ParallelExperimentRunner runner(bench_params(), parse_jobs_flag(argc, argv));

  // Submission pre-pass mirroring the measurement loops below.
  for (const auto& name : workload_names()) {
    for (uint32_t assoc : {1u, 4u}) {
      runner.submit(name, "orig-a" + std::to_string(assoc),
                    with_assoc(PaperConfig::kOrig, assoc));
      for (PaperConfig config : kConfigs) {
        runner.submit(name,
                      std::string(paper_config_name(config)) + "-a" +
                          std::to_string(assoc),
                      with_assoc(config, assoc));
      }
    }
  }
  bench::run_sweep(runner, argc, argv, "bench_fig12");

  std::vector<std::string> header = {"benchmark"};
  for (uint32_t assoc : {1u, 4u}) {
    for (PaperConfig config : kConfigs) {
      header.push_back(std::to_string(assoc) + "way " +
                       paper_config_name(config));
    }
  }
  TextTable table(header);

  std::vector<std::vector<double>> columns(6);
  for (const auto& name : workload_names()) {
    std::vector<std::string> row = {name};
    size_t col = 0;
    for (uint32_t assoc : {1u, 4u}) {
      const auto* base =
          runner.try_run(name, "orig-a" + std::to_string(assoc),
                         with_assoc(PaperConfig::kOrig, assoc));
      for (PaperConfig config : kConfigs) {
        const std::string key = std::string(paper_config_name(config)) +
                                "-a" + std::to_string(assoc);
        const auto* m = runner.try_run(name, key, with_assoc(config, assoc));
        const size_t c = col++;
        if (base == nullptr || m == nullptr) {
          row.push_back("n/a");
          continue;
        }
        const double pct =
            relative_speedup_pct(base->sim.cycles, m->sim.cycles);
        columns[c].push_back(1.0 + pct / 100.0);
        row.push_back(TextTable::pct(pct));
      }
    }
    table.add_row(row);
  }
  std::vector<std::string> avg = {"average"};
  for (const auto& col : columns) {
    avg.push_back(avg_pct_cell(col));
  }
  table.add_row(avg);
  std::fputs(table.render().c_str(), stdout);
  return finish_bench(runner, "bench_fig12");
}
