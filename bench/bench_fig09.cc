// Figure 9: whole-program speedup as the number of thread units varies.
// Baseline: the orig superthreaded processor with ONE thread unit. Series:
// orig with 2..16 TUs and wth-wp-wec with 1..16 TUs (8-issue cores, paper
// Section 5.2 defaults per TU).
#include "bench/bench_common.h"

using namespace wecsim;
using namespace wecsim::bench;

int main(int argc, char** argv) {
  print_header(
      "Figure 9: whole-program speedup vs thread units (baseline: 1-TU orig)",
      "wth-wp-wec reaches up to +39.2% (183.equake); a 2-TU wth-wp-wec often "
      "beats a 16-TU orig; 175.vpr slows down under superthreading");

  const uint32_t kTus[] = {1, 2, 4, 8, 16};
  ParallelExperimentRunner runner(bench_params(), parse_jobs_flag(argc, argv));

  // Submission pre-pass mirroring the measurement loops below.
  for (const auto& name : workload_names()) {
    runner.submit(name, "orig-1", make_paper_config(PaperConfig::kOrig, 1));
    for (PaperConfig config : {PaperConfig::kOrig, PaperConfig::kWthWpWec}) {
      for (uint32_t t : kTus) {
        runner.submit(name,
                      std::string(paper_config_name(config)) + "-" +
                          std::to_string(t),
                      make_paper_config(config, t));
      }
    }
  }
  bench::run_sweep(runner, argc, argv, "bench_fig09");

  std::vector<std::string> header = {"benchmark"};
  for (uint32_t t : kTus) header.push_back(std::to_string(t) + "TU-orig");
  for (uint32_t t : kTus) header.push_back(std::to_string(t) + "TU-wec");
  TextTable table(header);

  std::vector<std::vector<double>> columns(10);
  for (const auto& name : workload_names()) {
    const auto* base =
        runner.try_run(name, "orig-1", make_paper_config(PaperConfig::kOrig, 1));
    std::vector<std::string> row = {name};
    size_t col = 0;
    for (PaperConfig config : {PaperConfig::kOrig, PaperConfig::kWthWpWec}) {
      for (uint32_t t : kTus) {
        const std::string key =
            std::string(paper_config_name(config)) + "-" + std::to_string(t);
        const auto* m = runner.try_run(name, key, make_paper_config(config, t));
        const size_t c = col++;
        if (base == nullptr || m == nullptr) {
          row.push_back("n/a");
          continue;
        }
        const double pct =
            relative_speedup_pct(base->sim.cycles, m->sim.cycles);
        columns[c].push_back(1.0 + pct / 100.0);
        row.push_back(TextTable::pct(pct));
      }
    }
    table.add_row(row);
  }
  std::vector<std::string> avg = {"average"};
  for (const auto& col : columns) {
    avg.push_back(avg_pct_cell(col));
  }
  table.add_row(avg);
  std::fputs(table.render().c_str(), stdout);
  return finish_bench(runner, "bench_fig09");
}
