// Figure 11: relative speedup of every processor configuration over the
// baseline orig superthreaded processor, all with eight thread units.
#include "bench/bench_common.h"

using namespace wecsim;
using namespace wecsim::bench;

int main(int argc, char** argv) {
  print_header(
      "Figure 11: relative speedups of all configurations (8 TUs)",
      "wth-wp-wec wins everywhere (up to +18.5% on mcf, +9.7% average); "
      "wp/wth/wth-wp alone gain little (pollution offsets prefetch); nlp "
      "averages +5.5%");

  const PaperConfig kConfigs[] = {
      PaperConfig::kVc,      PaperConfig::kWp,       PaperConfig::kWth,
      PaperConfig::kWthWp,   PaperConfig::kWthWpVc,  PaperConfig::kWthWpWec,
      PaperConfig::kNlp,
  };
  ParallelExperimentRunner runner(bench_params(), parse_jobs_flag(argc, argv));

  // Submission pre-pass mirroring the measurement loops below.
  for (const auto& name : workload_names()) {
    runner.submit(name, "orig", make_paper_config(PaperConfig::kOrig, 8));
    for (PaperConfig config : kConfigs) {
      runner.submit(name, paper_config_name(config),
                    make_paper_config(config, 8));
    }
  }
  bench::run_sweep(runner, argc, argv, "bench_fig11");

  std::vector<std::string> header = {"benchmark"};
  for (PaperConfig config : kConfigs) header.push_back(paper_config_name(config));
  TextTable table(header);

  std::vector<std::vector<double>> columns(std::size(kConfigs));
  for (const auto& name : workload_names()) {
    const auto* base =
        runner.try_run(name, "orig", make_paper_config(PaperConfig::kOrig, 8));
    std::vector<std::string> row = {name};
    for (size_t i = 0; i < std::size(kConfigs); ++i) {
      const auto* m = runner.try_run(name, paper_config_name(kConfigs[i]),
                                     make_paper_config(kConfigs[i], 8));
      if (base == nullptr || m == nullptr) {
        row.push_back("n/a");
        continue;
      }
      const double pct = relative_speedup_pct(base->sim.cycles, m->sim.cycles);
      columns[i].push_back(1.0 + pct / 100.0);
      row.push_back(TextTable::pct(pct));
    }
    table.add_row(row);
  }
  std::vector<std::string> avg = {"average"};
  for (const auto& col : columns) {
    avg.push_back(avg_pct_cell(col));
  }
  table.add_row(avg);
  std::fputs(table.render().c_str(), stdout);
  return finish_bench(runner, "bench_fig11");
}
