// Figure 10: speedup of wth-wp-wec over the orig configuration with the SAME
// number of thread units (the WEC's contribution on top of parallel
// execution), for 1..16 TUs.
#include "bench/bench_common.h"

using namespace wecsim;
using namespace wecsim::bench;

int main(int argc, char** argv) {
  print_header(
      "Figure 10: wth-wp-wec speedup over same-TU-count orig",
      "grows with thread count (more wrong threads -> more prefetching): "
      "e.g. 181.mcf +6.2% at 1 TU to +20.2% at 16 TUs");

  const uint32_t kTus[] = {1, 2, 4, 8, 16};
  ParallelExperimentRunner runner(bench_params(), parse_jobs_flag(argc, argv));

  // Submission pre-pass mirroring the measurement loops below.
  for (const auto& name : workload_names()) {
    for (uint32_t t : kTus) {
      runner.submit(name, "orig-" + std::to_string(t),
                    make_paper_config(PaperConfig::kOrig, t));
      runner.submit(name, "wth-wp-wec-" + std::to_string(t),
                    make_paper_config(PaperConfig::kWthWpWec, t));
    }
  }
  bench::run_sweep(runner, argc, argv, "bench_fig10");

  TextTable table({"benchmark", "1TU", "2TU", "4TU", "8TU", "16TU"});
  std::vector<std::vector<double>> columns(5);
  for (const auto& name : workload_names()) {
    std::vector<std::string> row = {name};
    for (size_t i = 0; i < 5; ++i) {
      const uint32_t t = kTus[i];
      const auto* base = runner.try_run(name, "orig-" + std::to_string(t),
                                        make_paper_config(PaperConfig::kOrig, t));
      const auto* wec =
          runner.try_run(name, "wth-wp-wec-" + std::to_string(t),
                         make_paper_config(PaperConfig::kWthWpWec, t));
      if (base == nullptr || wec == nullptr) {
        row.push_back("n/a");
        continue;
      }
      const double pct =
          relative_speedup_pct(base->sim.cycles, wec->sim.cycles);
      columns[i].push_back(1.0 + pct / 100.0);
      row.push_back(TextTable::pct(pct));
    }
    table.add_row(row);
  }
  std::vector<std::string> avg = {"average"};
  for (const auto& col : columns) {
    avg.push_back(avg_pct_cell(col));
  }
  table.add_row(avg);
  std::fputs(table.render().c_str(), stdout);
  return finish_bench(runner, "bench_fig10");
}
