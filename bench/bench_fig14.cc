// Figure 14: sensitivity to the shared L2 size (128K/256K/512K). Normalized
// execution time; baseline (1.0) is orig with the 128K L2. A larger L2
// leaves less memory latency for the WEC to hide, so its relative gain
// shrinks.
#include "bench/bench_common.h"

using namespace wecsim;
using namespace wecsim::bench;

namespace {

StaConfig with_l2_size(PaperConfig config, uint64_t kb) {
  StaConfig sta = make_paper_config(config, 8);
  sta.mem.l2.size_bytes = kb * 1024;
  return sta;
}

}  // namespace

int main(int argc, char** argv) {
  print_header(
      "Figure 14: normalized execution time vs L2 size (8 TUs; baseline "
      "orig 128K)",
      "both configurations improve with a larger L2, and the wth-wp-wec "
      "advantage over orig narrows as L2 misses disappear");

  const uint64_t kSizes[] = {128, 256, 512};
  ParallelExperimentRunner runner(bench_params(), parse_jobs_flag(argc, argv));

  // Submission pre-pass mirroring the measurement loops below.
  for (const auto& name : workload_names()) {
    runner.submit(name, "orig-128k", with_l2_size(PaperConfig::kOrig, 128));
    for (PaperConfig config : {PaperConfig::kOrig, PaperConfig::kWthWpWec}) {
      for (uint64_t kb : kSizes) {
        runner.submit(name,
                      std::string(paper_config_name(config)) + "-l2-" +
                          std::to_string(kb) + "k",
                      with_l2_size(config, kb));
      }
    }
  }
  bench::run_sweep(runner, argc, argv, "bench_fig14");

  std::vector<std::string> header = {"benchmark"};
  for (PaperConfig config : {PaperConfig::kOrig, PaperConfig::kWthWpWec}) {
    for (uint64_t kb : kSizes) {
      header.push_back(std::string(paper_config_name(config)) + " " +
                       std::to_string(kb) + "k");
    }
  }
  TextTable table(header);

  for (const auto& name : workload_names()) {
    const auto* base = runner.try_run(name, "orig-128k",
                                      with_l2_size(PaperConfig::kOrig, 128));
    std::vector<std::string> row = {name};
    for (PaperConfig config : {PaperConfig::kOrig, PaperConfig::kWthWpWec}) {
      for (uint64_t kb : kSizes) {
        const std::string key = std::string(paper_config_name(config)) +
                                "-l2-" + std::to_string(kb) + "k";
        const auto* m = runner.try_run(name, key, with_l2_size(config, kb));
        if (base == nullptr || m == nullptr) {
          row.push_back("n/a");
          continue;
        }
        row.push_back(TextTable::num(
            static_cast<double>(m->sim.cycles) / base->sim.cycles, 3));
      }
    }
    table.add_row(row);
  }
  std::fputs(table.render().c_str(), stdout);
  return finish_bench(runner, "bench_fig14");
}
