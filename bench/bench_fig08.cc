// Figure 8: ILP vs TLP with fixed total issue capacity (Table 3 machines).
// Speedup of the parallelized portions relative to a single-thread,
// single-issue processor, for 1/2/4/8/16 thread units whose per-TU issue
// width scales as 16/8/4/2/1.
#include "bench/bench_common.h"

using namespace wecsim;
using namespace wecsim::bench;

int main(int argc, char** argv) {
  print_header(
      "Figure 8: speedup of parallelized portions (Table 3 machines)",
      "gzip reaches ~14x at 16 TUs; vpr prefers ILP (speedup falls as TUs "
      "rise); on average TLP beats pure ILP");

  const uint32_t kTus[] = {1, 2, 4, 8, 16};
  ParallelExperimentRunner runner(bench_params(), parse_jobs_flag(argc, argv));

  // Submission pre-pass mirroring the measurement loops below, so the worker
  // pool produces records in exactly the serial order.
  for (const auto& name : workload_names()) {
    runner.submit(name, "table3-baseline", make_table3_baseline());
    for (uint32_t t : kTus) {
      runner.submit(name, "table3-" + std::to_string(t),
                    make_table3_config(t));
    }
  }
  bench::run_sweep(runner, argc, argv, "bench_fig08");

  TextTable table({"benchmark", "1TU", "2TU", "4TU", "8TU", "16TU"});
  std::vector<std::vector<double>> per_config(5);
  for (const auto& name : workload_names()) {
    const auto* base =
        runner.try_run(name, "table3-baseline", make_table3_baseline());
    std::vector<std::string> row = {name};
    for (size_t i = 0; i < 5; ++i) {
      const auto* m = runner.try_run(name, "table3-" + std::to_string(kTus[i]),
                                     make_table3_config(kTus[i]));
      if (base == nullptr || m == nullptr) {
        row.push_back("n/a");
        continue;
      }
      const double s = speedup(base->parallel_cycles, m->parallel_cycles);
      per_config[i].push_back(s);
      row.push_back(TextTable::num(s, 2) + "x");
    }
    table.add_row(row);
  }
  std::vector<std::string> avg = {"average"};
  for (const auto& speedups : per_config) {
    avg.push_back(avg_x_cell(speedups));
  }
  table.add_row(avg);
  std::fputs(table.render().c_str(), stdout);
  return finish_bench(runner, "bench_fig08");
}
