// Component microbenchmarks (google-benchmark): throughput of the simulator
// building blocks, plus ablations of the WEC design choices DESIGN.md calls
// out (victim-role on/off is covered by fig15; here: the chained next-line
// prefetch rule and the side-structure roles on a conflict-heavy kernel).
#include <benchmark/benchmark.h>

#include "core/sim_config.h"
#include "core/simulator.h"
#include "cpu/bpred.h"
#include "func/interpreter.h"
#include "isa/assembler.h"
#include "mem/cache.h"
#include "mem/side_cache.h"
#include "workloads/workload.h"

namespace wecsim {
namespace {

void BM_CacheAccess(benchmark::State& state) {
  SetAssocCache cache({8 * 1024, static_cast<uint32_t>(state.range(0)), 64});
  uint64_t addr = 0;
  Cycle now = 0;
  for (auto _ : state) {
    if (!cache.access(addr, false, ++now)) cache.insert(addr, false, now);
    addr = (addr + 8) & 0xffff;
    benchmark::DoNotOptimize(addr);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess)->Arg(1)->Arg(4);

void BM_SideCacheProbe(benchmark::State& state) {
  SideCache side(static_cast<uint32_t>(state.range(0)), 64);
  for (int i = 0; i < state.range(0); ++i) {
    side.insert(static_cast<Addr>(i) * 64, SideOrigin::kVictim, false, 0);
  }
  Addr addr = 0;
  Cycle now = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(side.access(addr, ++now));
    addr = (addr + 64) & 0x7ff;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SideCacheProbe)->Arg(8)->Arg(32);

void BM_BranchPredictor(benchmark::State& state) {
  StatsRegistry stats;
  BranchPredictor bpred(BpredConfig{}, stats, "bp.");
  Addr pc = 0x1000;
  uint64_t i = 0;
  for (auto _ : state) {
    const bool taken = bpred.predict_taken(pc);
    bpred.update_branch(pc, (i & 3) != 0);
    benchmark::DoNotOptimize(taken);
    pc = 0x1000 + (i++ % 64) * kInstrBytes;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BranchPredictor);

void BM_Assembler(benchmark::State& state) {
  Workload w = make_workload("181.mcf", {1, 42});
  (void)w;  // warm factory path
  for (auto _ : state) {
    Workload inner = make_workload("181.mcf", {1, 42});
    benchmark::DoNotOptimize(inner.program.num_instructions());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Assembler);

void BM_Interpreter(benchmark::State& state) {
  Workload w = make_workload("164.gzip", {1, 42});
  for (auto _ : state) {
    FlatMemory memory;
    memory.load_program(w.program);
    w.init(memory);
    Interpreter interp(w.program, memory);
    FuncResult r = interp.run();
    state.SetItemsProcessed(state.items_processed() + r.instrs_total);
    benchmark::DoNotOptimize(r.instrs_total);
  }
}
BENCHMARK(BM_Interpreter)->Unit(benchmark::kMillisecond);

/// Timing-simulator throughput: simulated cycles per wall second.
void BM_TimingSimulator(benchmark::State& state) {
  Workload w = make_workload("183.equake", {1, 42});
  for (auto _ : state) {
    Simulator sim(w.program, make_paper_config(PaperConfig::kWthWpWec, 8));
    w.init(sim.memory());
    SimResult r = sim.run();
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<int64_t>(r.cycles));
    benchmark::DoNotOptimize(r.cycles);
  }
}
BENCHMARK(BM_TimingSimulator)->Unit(benchmark::kMillisecond);

/// Ablation: the WEC rule "a correct-path hit on a wrong-fetched block
/// triggers a next-line prefetch", with and without chaining through blocks
/// that themselves arrived via prefetch. Reported as simulated cycles of the
/// conflict-heavy mesa workload (fewer is better).
void BM_WecChainPrefetchAblation(benchmark::State& state) {
  const bool chain = state.range(0) != 0;
  Workload w = make_workload("177.mesa", {2, 42});
  uint64_t cycles = 0;
  for (auto _ : state) {
    StaConfig config = make_paper_config(PaperConfig::kWthWpWec, 8);
    config.mem.wec_chain_prefetch = chain;
    Simulator sim(w.program, config);
    w.init(sim.memory());
    SimResult r = sim.run();
    cycles = r.cycles;
    benchmark::DoNotOptimize(r.cycles);
  }
  state.counters["sim_cycles"] = static_cast<double>(cycles);
}
BENCHMARK(BM_WecChainPrefetchAblation)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wecsim

BENCHMARK_MAIN();
