// Component microbenchmarks (google-benchmark): throughput of the simulator
// building blocks, plus ablations of the WEC design choices DESIGN.md calls
// out (victim-role on/off is covered by fig15; here: the chained next-line
// prefetch rule and the side-structure roles on a conflict-heavy kernel).
//
// Besides the google-benchmark suite, `--core[=smoke]` runs the cycle-skip
// core throughput grid: the memory-bound mcf workload across a memory-latency
// sweep with event-driven skipping off vs on, verifying the run reports are
// byte-identical per point and writing per-point sim_cycles_per_second to
// BENCH_core.json (wecsim.bench_timing schema). `--assert-speedup=N` exits
// nonzero when the highest-latency point speeds up less than Nx — wired as
// the perf-smoke ctest `perf_smoke_cycle_skip`.
//
// `--core-sampled[=smoke]` runs the same sweep full-fidelity vs sampled
// (WECSIM_SAMPLE-style windowed simulation), gates per-point IPC error at
// 2%, and writes the BENCH_core_full.json / BENCH_core_sampled.json pair
// for scripts/bench_compare.py.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>

#include "bench/bench_common.h"
#include "core/sampled.h"
#include "core/sim_config.h"
#include "core/simulator.h"
#include "cpu/bpred.h"
#include "func/interpreter.h"
#include "harness/report.h"
#include "isa/assembler.h"
#include "mem/cache.h"
#include "mem/side_cache.h"
#include "workloads/workload.h"

namespace wecsim {
namespace {

void BM_CacheAccess(benchmark::State& state) {
  SetAssocCache cache({8 * 1024, static_cast<uint32_t>(state.range(0)), 64});
  uint64_t addr = 0;
  Cycle now = 0;
  for (auto _ : state) {
    if (!cache.access(addr, false, ++now)) cache.insert(addr, false, now);
    addr = (addr + 8) & 0xffff;
    benchmark::DoNotOptimize(addr);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess)->Arg(1)->Arg(4);

void BM_SideCacheProbe(benchmark::State& state) {
  SideCache side(static_cast<uint32_t>(state.range(0)), 64);
  for (int i = 0; i < state.range(0); ++i) {
    side.insert(static_cast<Addr>(i) * 64, SideOrigin::kVictim, false, 0);
  }
  Addr addr = 0;
  Cycle now = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(side.access(addr, ++now));
    addr = (addr + 64) & 0x7ff;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SideCacheProbe)->Arg(8)->Arg(32);

void BM_BranchPredictor(benchmark::State& state) {
  StatsRegistry stats;
  BranchPredictor bpred(BpredConfig{}, stats, "bp.");
  Addr pc = 0x1000;
  uint64_t i = 0;
  for (auto _ : state) {
    const bool taken = bpred.predict_taken(pc);
    bpred.update_branch(pc, (i & 3) != 0);
    benchmark::DoNotOptimize(taken);
    pc = 0x1000 + (i++ % 64) * kInstrBytes;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BranchPredictor);

void BM_Assembler(benchmark::State& state) {
  Workload w = make_workload("181.mcf", {1, 42});
  (void)w;  // warm factory path
  for (auto _ : state) {
    Workload inner = make_workload("181.mcf", {1, 42});
    benchmark::DoNotOptimize(inner.program.num_instructions());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Assembler);

void BM_Interpreter(benchmark::State& state) {
  Workload w = make_workload("164.gzip", {1, 42});
  for (auto _ : state) {
    FlatMemory memory;
    memory.load_program(w.program);
    w.init(memory);
    Interpreter interp(w.program, memory);
    FuncResult r = interp.run();
    state.SetItemsProcessed(state.items_processed() + r.instrs_total);
    benchmark::DoNotOptimize(r.instrs_total);
  }
}
BENCHMARK(BM_Interpreter)->Unit(benchmark::kMillisecond);

/// Timing-simulator throughput: simulated cycles per wall second.
void BM_TimingSimulator(benchmark::State& state) {
  Workload w = make_workload("183.equake", {1, 42});
  for (auto _ : state) {
    Simulator sim(w.program, make_paper_config(PaperConfig::kWthWpWec, 8));
    w.init(sim.memory());
    SimResult r = sim.run();
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<int64_t>(r.cycles));
    benchmark::DoNotOptimize(r.cycles);
  }
}
BENCHMARK(BM_TimingSimulator)->Unit(benchmark::kMillisecond);

/// Ablation: the WEC rule "a correct-path hit on a wrong-fetched block
/// triggers a next-line prefetch", with and without chaining through blocks
/// that themselves arrived via prefetch. Reported as simulated cycles of the
/// conflict-heavy mesa workload (fewer is better).
void BM_WecChainPrefetchAblation(benchmark::State& state) {
  const bool chain = state.range(0) != 0;
  Workload w = make_workload("177.mesa", {2, 42});
  uint64_t cycles = 0;
  for (auto _ : state) {
    StaConfig config = make_paper_config(PaperConfig::kWthWpWec, 8);
    config.mem.wec_chain_prefetch = chain;
    Simulator sim(w.program, config);
    w.init(sim.memory());
    SimResult r = sim.run();
    cycles = r.cycles;
    benchmark::DoNotOptimize(r.cycles);
  }
  state.counters["sim_cycles"] = static_cast<double>(cycles);
}
BENCHMARK(BM_WecChainPrefetchAblation)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

// --- Cycle-skip core throughput grid (--core mode) -------------------------

namespace {

/// One timed simulation of the point, with the full registry captured for
/// the byte-identity check.
struct CorePoint {
  RunRecord record;
  uint64_t skipped = 0;
  uint64_t jumps = 0;
};

CorePoint run_core_point(const Workload& w, const WorkloadParams& params,
                         uint32_t mem_lat, bool skip) {
  StaConfig config = make_paper_config(PaperConfig::kWthWpWec, 8);
  config.mem.mem_lat = mem_lat;
  config.cycle_skip = skip;
  const auto start = std::chrono::steady_clock::now();
  Simulator sim(w.program, config);
  w.init(sim.memory());
  const SimResult result = sim.run();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  CorePoint point;
  point.record.workload = w.name;
  point.record.config_key =
      "wec-m" + std::to_string(mem_lat) + (skip ? "-skip" : "-noskip");
  point.record.scale = params.scale;
  point.record.result = result;
  point.record.counters = sim.stats().snapshot();
  point.record.histograms = sim.stats().histogram_snapshot();
  point.record.gauges = sim.stats().gauge_snapshot();
  point.record.run_seconds = elapsed.count();
  point.skipped = sim.processor().skipped_cycles();
  point.jumps = sim.processor().skip_jumps();
  return point;
}

/// The report a point would render under a mode-neutral config key: equal
/// bytes here means equal SimResult, counters, gauges, and histograms.
std::string neutral_report(const CorePoint& point, uint32_t mem_lat) {
  RunRecord rec = point.record;
  rec.config_key = "wec-m" + std::to_string(mem_lat);
  return render_run_report("bench_micro_core", {rec});
}

}  // namespace

int run_core_bench(bool smoke, double assert_speedup) {
  using bench::bench_params;
  // The knob under test is the config's; an inherited env override (or the
  // result cache short-circuiting the second run) would fake the A/B.
  ::unsetenv("WECSIM_SKIP");
  ::unsetenv("WECSIM_CACHE_DIR");

  WorkloadParams params = bench_params();
  std::vector<uint32_t> lats = {50, 100, 200, 400, 500};
  if (smoke) {
    params.scale = 1;
    lats = {500};
  }
  const Workload w = make_workload("181.mcf", params);

  std::printf("=== Cycle-skip core throughput: %s scale %u, skip off vs on "
              "===\n\n",
              w.name.c_str(), params.scale);

  TextTable table({"mem_lat", "off Mcyc/s", "on Mcyc/s", "speedup",
                   "skipped", "jumps"});
  std::vector<RunRecord> records;
  double last_speedup = 0.0;
  bool identical = true;
  for (uint32_t lat : lats) {
    const CorePoint off = run_core_point(w, params, lat, /*skip=*/false);
    const CorePoint on = run_core_point(w, params, lat, /*skip=*/true);
    if (neutral_report(on, lat) != neutral_report(off, lat)) {
      std::fprintf(stderr,
                   "FAIL: skip on/off run reports differ at mem_lat=%u\n",
                   lat);
      identical = false;
    }
    last_speedup = off.record.run_seconds > 0.0 && on.record.run_seconds > 0.0
                       ? off.record.run_seconds / on.record.run_seconds
                       : 0.0;
    const double pct =
        on.record.result.cycles > 0
            ? 100.0 * static_cast<double>(on.skipped) /
                  static_cast<double>(on.record.result.cycles)
            : 0.0;
    table.add_row({std::to_string(lat),
                   TextTable::num(off.record.sim_cycles_per_second() / 1e6, 2),
                   TextTable::num(on.record.sim_cycles_per_second() / 1e6, 2),
                   TextTable::num(last_speedup, 2) + "x",
                   TextTable::pct(pct), std::to_string(on.jumps)});
    records.push_back(off.record);
    records.push_back(on.record);
  }
  std::fputs(table.render().c_str(), stdout);
  if (!identical) return 1;
  std::printf("\ndeterminism: %zu points byte-identical across modes\n",
              lats.size());

  double wall_seconds = 0.0;
  for (const RunRecord& rec : records) wall_seconds += rec.run_seconds;
  const char* dir = std::getenv("WECSIM_REPORT_DIR");
  const std::string path = (dir != nullptr && *dir != '\0')
                               ? std::string(dir) + "/BENCH_core.json"
                               : std::string("BENCH_core.json");
  try {
    write_timing_report(path, "bench_micro_core", /*jobs=*/1, wall_seconds,
                        records);
    std::printf("timing: %s\n", path.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[warn] timing file not written: %s\n", e.what());
  }

  if (assert_speedup > 0.0 && last_speedup < assert_speedup) {
    std::fprintf(stderr,
                 "FAIL: speedup %.2fx at mem_lat=%u is below the required "
                 "%.2fx\n",
                 last_speedup, lats.back(), assert_speedup);
    return 1;
  }
  return 0;
}

// --- Sampled-vs-full core throughput grid (--core-sampled mode) ------------
//
// The same memory-latency sweep, full fidelity vs sampled simulation
// (core/sampled.h, auto-planned windows). Per point it checks the sampled
// architectural-IPC estimate against the full run (≤2% absolute error) and
// measures the throughput gain (extrapolated cycles per wall second over
// full cycles per wall second). Writes a *pair* of timing reports with
// matching (workload, config) keys — BENCH_core_full.json and
// BENCH_core_sampled.json — so scripts/bench_compare.py --metric=ipc can
// re-verify the accuracy gate offline, and --metric=cycles can pin the
// (deterministic) sampled cycle counts against a committed baseline.
// `--assert-speedup=N` exits nonzero when the geometric-mean throughput gain
// falls below Nx.

int run_core_sampled_bench(bool smoke, double assert_speedup) {
  using bench::bench_params;
  ::unsetenv("WECSIM_SKIP");
  ::unsetenv("WECSIM_CACHE_DIR");

  WorkloadParams params = bench_params();
  // Sampling needs enough dynamic instructions for non-degenerate windows
  // (tiny programs collapse to the exact-mode fallback, which measures
  // everything and speeds up nothing) — the grid pins a larger scale than
  // the full-fidelity smoke grid. The smoke variant trims the latency sweep,
  // not the scale.
  params.scale = 32;
  std::vector<uint32_t> lats = {50, 100, 200, 400, 500};
  if (smoke) lats = {500};
  const Workload w = make_workload("181.mcf", params);

  std::printf(
      "=== Sampled vs full-fidelity core throughput: %s scale %u ===\n\n",
      w.name.c_str(), params.scale);

  TextTable table({"mem_lat", "full Mcyc/s", "sampled Mcyc/s", "gain",
                   "ipc err", "ci95", "windows"});
  std::vector<RunRecord> full_records;
  std::vector<RunRecord> sampled_records;
  std::vector<double> gains;
  bool accurate = true;
  for (uint32_t lat : lats) {
    StaConfig config = make_paper_config(PaperConfig::kWthWpWec, 8);
    config.mem.mem_lat = lat;

    // Full-fidelity reference (cycle skipping on: that IS the fast full
    // mode whose throughput sampling must beat).
    const auto full_start = std::chrono::steady_clock::now();
    Simulator full_sim(w.program, config);
    w.init(full_sim.memory());
    const SimResult full = full_sim.run();
    const std::chrono::duration<double> full_sec =
        std::chrono::steady_clock::now() - full_start;

    // Sampled estimate of the same point.
    StaConfig sampled_config = config;
    sampled_config.sampling.enabled = true;
    const auto sampled_start = std::chrono::steady_clock::now();
    SampledSimulator sampled_sim(w.program, sampled_config);
    w.init(sampled_sim.memory());
    const SampledResult sampled = sampled_sim.run();
    const std::chrono::duration<double> sampled_sec =
        std::chrono::steady_clock::now() - sampled_start;

    const std::string key = "wec-m" + std::to_string(lat);
    RunRecord full_rec;
    full_rec.workload = w.name;
    full_rec.config_key = key;
    full_rec.scale = params.scale;
    full_rec.result = full;
    full_rec.run_seconds = full_sec.count();
    // Both sides of the A/B carry the whole-program architectural
    // instruction count (the interpreter's N is exact and mode-independent),
    // so the timing report emits the same IPC basis for each: N / cycles.
    full_rec.sampling.func_instrs = sampled.func_instrs;

    RunRecord sampled_rec;
    sampled_rec.workload = w.name;
    sampled_rec.config_key = key;
    sampled_rec.scale = params.scale;
    sampled_rec.result.cycles = sampled.extrapolated_cycles;
    sampled_rec.result.committed = sampled.extrapolated_committed;
    sampled_rec.result.halted = sampled.halted;
    sampled_rec.run_seconds = sampled_sec.count();
    sampled_rec.sampling.enabled = true;
    sampled_rec.sampling.func_instrs = sampled.func_instrs;
    sampled_rec.sampling.detailed_cycles = sampled.detailed_cycles;
    sampled_rec.sampling.cpi = sampled.cpi;
    sampled_rec.sampling.ipc = sampled.ipc;
    sampled_rec.sampling.ci95_pct = sampled.ci95_pct;
    sampled_rec.sampling.windows = sampled.windows;

    const double full_ipc = static_cast<double>(sampled.func_instrs) /
                            static_cast<double>(full.cycles);
    const double ipc_err_pct =
        100.0 * std::abs(sampled.ipc - full_ipc) / full_ipc;
    // Per-point statistical gate, same form as tests/sampling_test.cc: the
    // window-level 95% CI when it is meaningful, never tighter than the 2%
    // acceptance floor. The HARD 2% gate runs downstream: perf_regression.sh
    // feeds the smoke-grid report pair to bench_compare.py --metric=ipc.
    const double tolerance = std::max(sampled.ci95_pct, 2.0);
    if (ipc_err_pct > tolerance) {
      std::fprintf(stderr,
                   "FAIL: sampled IPC error %.2f%% exceeds %.2f%% at "
                   "mem_lat=%u (sampled %.4f vs full %.4f)\n",
                   ipc_err_pct, tolerance, lat, sampled.ipc, full_ipc);
      accurate = false;
    }
    const double gain =
        full_rec.sim_cycles_per_second() > 0.0
            ? sampled_rec.sim_cycles_per_second() /
                  full_rec.sim_cycles_per_second()
            : 0.0;
    gains.push_back(gain);
    table.add_row({std::to_string(lat),
                   TextTable::num(full_rec.sim_cycles_per_second() / 1e6, 2),
                   TextTable::num(sampled_rec.sim_cycles_per_second() / 1e6, 2),
                   TextTable::num(gain, 2) + "x",
                   TextTable::pct(ipc_err_pct),
                   TextTable::pct(sampled.ci95_pct),
                   std::to_string(sampled.windows.size())});
    full_records.push_back(std::move(full_rec));
    sampled_records.push_back(std::move(sampled_rec));
  }
  std::fputs(table.render().c_str(), stdout);

  double geomean = 0.0;
  if (!gains.empty()) {
    double log_sum = 0.0;
    for (double g : gains) log_sum += std::log(g);
    geomean = std::exp(log_sum / static_cast<double>(gains.size()));
  }
  std::printf("\ngeometric-mean throughput gain: %.2fx\n", geomean);

  const char* dir = std::getenv("WECSIM_REPORT_DIR");
  const std::string base = (dir != nullptr && *dir != '\0')
                               ? std::string(dir) + "/"
                               : std::string();
  try {
    double full_wall = 0.0, sampled_wall = 0.0;
    for (const RunRecord& r : full_records) full_wall += r.run_seconds;
    for (const RunRecord& r : sampled_records) sampled_wall += r.run_seconds;
    write_timing_report(base + "BENCH_core_full.json",
                        "bench_micro_core_full", /*jobs=*/1, full_wall,
                        full_records);
    write_timing_report(base + "BENCH_core_sampled.json",
                        "bench_micro_core_sampled", /*jobs=*/1, sampled_wall,
                        sampled_records);
    std::printf("timing: %sBENCH_core_full.json + %sBENCH_core_sampled.json\n",
                base.c_str(), base.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[warn] timing files not written: %s\n", e.what());
  }

  if (!accurate) return 1;
  if (assert_speedup > 0.0 && geomean < assert_speedup) {
    std::fprintf(stderr,
                 "FAIL: geomean throughput gain %.2fx is below the required "
                 "%.2fx\n",
                 geomean, assert_speedup);
    return 1;
  }
  return 0;
}

}  // namespace wecsim

int main(int argc, char** argv) {
  bool core = false;
  bool core_sampled = false;
  bool smoke = false;
  double assert_speedup = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--core") == 0) core = true;
    if (std::strcmp(argv[i], "--core=smoke") == 0) core = smoke = true;
    if (std::strcmp(argv[i], "--core-sampled") == 0) core_sampled = true;
    if (std::strcmp(argv[i], "--core-sampled=smoke") == 0) {
      core_sampled = smoke = true;
    }
    if (std::strncmp(argv[i], "--assert-speedup=", 17) == 0) {
      assert_speedup = std::atof(argv[i] + 17);
    }
  }
  if (core) return wecsim::run_core_bench(smoke, assert_speedup);
  if (core_sampled) {
    return wecsim::run_core_sampled_bench(smoke, assert_speedup);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
