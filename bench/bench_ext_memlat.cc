// Extension experiment (paper Section 7 future work): "the effects of
// memory latency ... on the performance of the WEC". Sweeps the round-trip
// memory latency and reports the wth-wp-wec speedup over orig at each point
// — the WEC is a latency-hiding device, so its gain should grow with the
// memory wall.
#include "bench/bench_common.h"

using namespace wecsim;
using namespace wecsim::bench;

namespace {

StaConfig with_mem_lat(PaperConfig config, uint32_t lat) {
  StaConfig sta = make_paper_config(config, 8);
  sta.mem.mem_lat = lat;
  return sta;
}

}  // namespace

int main(int argc, char** argv) {
  print_header(
      "Extension: WEC speedup vs memory latency (8 TUs)",
      "not evaluated in the paper (named as future work); expectation: the "
      "WEC's indirect prefetching hides more latency as memory gets slower");

  const uint32_t kLats[] = {50, 100, 200, 400, 500};
  ParallelExperimentRunner runner(bench_params(), parse_jobs_flag(argc, argv));

  // Submission pre-pass mirroring the measurement loops below.
  for (const auto& name : workload_names()) {
    for (uint32_t lat : kLats) {
      runner.submit(name, "orig-m" + std::to_string(lat),
                    with_mem_lat(PaperConfig::kOrig, lat));
      runner.submit(name, "wec-m" + std::to_string(lat),
                    with_mem_lat(PaperConfig::kWthWpWec, lat));
    }
  }
  bench::run_sweep(runner, argc, argv, "bench_ext_memlat");

  TextTable table({"benchmark", "50cyc", "100cyc", "200cyc", "400cyc",
                   "500cyc"});
  std::vector<std::vector<double>> columns(5);
  for (const auto& name : workload_names()) {
    std::vector<std::string> row = {name};
    for (size_t i = 0; i < 5; ++i) {
      const auto* base =
          runner.try_run(name, "orig-m" + std::to_string(kLats[i]),
                         with_mem_lat(PaperConfig::kOrig, kLats[i]));
      const auto* wec =
          runner.try_run(name, "wec-m" + std::to_string(kLats[i]),
                         with_mem_lat(PaperConfig::kWthWpWec, kLats[i]));
      if (base == nullptr || wec == nullptr) {
        row.push_back("n/a");
        continue;
      }
      const double pct =
          relative_speedup_pct(base->sim.cycles, wec->sim.cycles);
      columns[i].push_back(1.0 + pct / 100.0);
      row.push_back(TextTable::pct(pct));
    }
    table.add_row(row);
  }
  std::vector<std::string> avg = {"average"};
  for (const auto& col : columns) {
    avg.push_back(avg_pct_cell(col));
  }
  table.add_row(avg);
  std::fputs(table.render().c_str(), stdout);
  return finish_bench(runner, "bench_ext_memlat");
}
