// Figure 17: what the WEC does to the L1 data cache: the increase in
// processor<->L1 traffic from issuing wrong-execution loads, and the
// reduction in correct-execution L1 miss counts (8 TUs, wth-wp-wec vs orig).
#include "bench/bench_common.h"

using namespace wecsim;
using namespace wecsim::bench;

int main(int argc, char** argv) {
  print_header(
      "Figure 17: L1 traffic increase and miss-count reduction (8 TUs)",
      "miss reductions typically 42-73% (mesa highest, mcf lowest); traffic "
      "increases up to 30% (vpr), 14% on average");

  ParallelExperimentRunner runner(bench_params(), parse_jobs_flag(argc, argv));

  // Submission pre-pass mirroring the measurement loop below.
  for (const auto& name : workload_names()) {
    runner.submit(name, "orig", make_paper_config(PaperConfig::kOrig, 8));
    runner.submit(name, "wth-wp-wec",
                  make_paper_config(PaperConfig::kWthWpWec, 8));
  }
  bench::run_sweep(runner, argc, argv, "bench_fig17");

  TextTable table({"benchmark", "traffic increase", "miss reduction",
                   "orig misses", "wec misses", "wrong accesses"});
  double traffic_sum = 0.0;
  double miss_sum = 0.0;
  size_t n = 0;
  for (const auto& name : workload_names()) {
    const auto* base =
        runner.try_run(name, "orig", make_paper_config(PaperConfig::kOrig, 8));
    const auto* wec = runner.try_run(
        name, "wth-wp-wec", make_paper_config(PaperConfig::kWthWpWec, 8));
    if (base == nullptr || wec == nullptr) {
      table.add_row({name, "n/a", "n/a", "n/a", "n/a", "n/a"});
      continue;
    }
    const double traffic =
        100.0 * (static_cast<double>(wec->sim.l1d_accesses) /
                     base->sim.l1d_accesses -
                 1.0);
    const double miss_red =
        100.0 * (1.0 - static_cast<double>(wec->sim.l1d_misses) /
                           base->sim.l1d_misses);
    traffic_sum += traffic;
    miss_sum += miss_red;
    ++n;
    table.add_row({name, TextTable::pct(traffic), TextTable::pct(miss_red),
                   std::to_string(base->sim.l1d_misses),
                   std::to_string(wec->sim.l1d_misses),
                   std::to_string(wec->sim.l1d_wrong_accesses)});
  }
  if (n > 0) {
    table.add_row({"average", TextTable::pct(traffic_sum / n),
                   TextTable::pct(miss_sum / n), "", "", ""});
  }
  std::fputs(table.render().c_str(), stdout);
  return finish_bench(runner, "bench_fig17");
}
