// Shared plumbing for the reproduction benches: one binary regenerates one
// table/figure from the paper. Set WECSIM_SCALE to shrink/grow the workload
// sizes (default 4, the "MinneSPEC-like" reduced inputs).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/sim_config.h"
#include "harness/experiment.h"
#include "harness/parallel.h"
#include "harness/state_dir.h"
#include "harness/table.h"
#include "workloads/workload.h"

namespace wecsim::bench {

inline WorkloadParams bench_params() {
  WorkloadParams params;
  if (const char* env = std::getenv("WECSIM_SCALE")) {
    params.scale = static_cast<uint32_t>(std::strtoul(env, nullptr, 10));
    if (params.scale == 0) params.scale = 1;
  }
  return params;
}

inline void print_header(const char* what, const char* paper_says) {
  std::printf("=== %s ===\n", what);
  std::printf("paper: %s\n", paper_says);
  std::printf("workload scale: %u (set WECSIM_SCALE to change)\n\n",
              bench_params().scale);
}

/// Parse a `--jobs=N` / `--jobs N` / `-j N` flag. Returns 0 when absent,
/// which lets ParallelExperimentRunner fall back to WECSIM_JOBS and then the
/// hardware concurrency.
inline int parse_jobs_flag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--jobs=", 0) == 0) {
      return std::atoi(arg.c_str() + 7);
    }
    if ((arg == "--jobs" || arg == "-j") && i + 1 < argc) {
      return std::atoi(argv[i + 1]);
    }
  }
  return 0;
}

/// Parse a `--resume` flag: replay the WECSIM_STATE_DIR sweep journal
/// instead of starting the sweep over. Equivalent to WECSIM_RESUME=1.
inline bool parse_resume_flag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--resume") return true;
  }
  return false;
}

/// Short benchmark labels in the paper's presentation order.
inline std::string short_name(const std::string& paper_name) {
  return paper_name.substr(paper_name.find('.') + 1);
}

/// If WECSIM_REPORT_DIR is set, write the runner's collected simulations as
/// a machine-readable run report (<dir>/<bench_name>.report.json) next to
/// the printed table. See docs/OBSERVABILITY.md for the schema.
inline void write_report_if_requested(const ExperimentRunner& runner,
                                      const std::string& bench_name) {
  const char* dir = std::getenv("WECSIM_REPORT_DIR");
  if (dir == nullptr || *dir == '\0') return;
  const std::string path =
      std::string(dir) + "/" + bench_name + ".report.json";
  try {
    runner.write_report(path, bench_name);
    std::printf("\nrun report: %s (%zu runs)\n", path.c_str(),
                runner.records().size());
  } catch (const std::exception& e) {
    // The table already printed; a bad report directory should not turn the
    // whole bench run into an abort.
    std::fprintf(stderr, "[warn] run report not written: %s\n", e.what());
  }
  // The timing side-channel is deliberately a separate file: the canonical
  // report above must stay byte-stable across runs, wall-clock cannot.
  const std::string timing_path =
      std::string(dir) + "/" + bench_name + ".timing.json";
  try {
    runner.write_timing(timing_path, bench_name);
    std::printf("timing: %s (%u jobs, %.2fs wall)\n", timing_path.c_str(),
                runner.jobs(), runner.elapsed_seconds());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[warn] timing report not written: %s\n", e.what());
  }
}

/// Standard bench sweep step: honour `--resume`, execute every queued point,
/// and — when a SIGINT/SIGTERM stopped a crash-safe sweep early — write the
/// partial run report (marked "interrupted": true), tell the operator how to
/// resume, and exit with kExitInterrupted (3) instead of returning. The
/// measurement loops after this call therefore always see a complete sweep.
inline void run_sweep(ParallelExperimentRunner& runner, int argc, char** argv,
                      const std::string& bench_name) {
  if (parse_resume_flag(argc, argv)) runner.set_resume(true);
  runner.drain();
  if (!runner.interrupted()) return;
  std::fprintf(stderr,
               "\n[interrupted] sweep stopped early; %zu point(s) remain in "
               "the journal. Re-run with --resume (or WECSIM_RESUME=1) to "
               "finish.\n",
               runner.pending());
  write_report_if_requested(runner, bench_name);
  std::exit(kExitInterrupted);
}

/// Standard bench epilogue: write the (report, timing) pair when requested,
/// then summarize the fail-soft outcome. Exit status 0 when every point was
/// measured; 2 when points were quarantined — the table and report above
/// still carry every point that survived, so a flaky sweep stays useful.
inline int finish_bench(const ExperimentRunner& runner,
                        const std::string& bench_name) {
  write_report_if_requested(runner, bench_name);
  size_t quarantined = 0;
  for (const PointFailure& f : runner.failures()) {
    if (f.status == "quarantined") ++quarantined;
  }
  if (!runner.failures().empty()) {
    std::fprintf(stderr, "\n[fail-soft] %zu point failure(s), %zu quarantined:\n",
                 runner.failures().size(), quarantined);
    for (const PointFailure& f : runner.failures()) {
      std::fprintf(stderr, "  %s|%s: %s after %u attempt(s): %s\n",
                   f.workload.c_str(), f.config_key.c_str(), f.status.c_str(),
                   f.attempts, f.error.c_str());
    }
  }
  return quarantined == 0 ? 0 : 2;
}

/// Average cells that survive quarantined points: a column with no surviving
/// measurements renders as "n/a" instead of tripping mean_speedup's
/// empty-input check.
inline std::string avg_pct_cell(const std::vector<double>& speedups) {
  if (speedups.empty()) return "n/a";
  return TextTable::pct(100.0 * (mean_speedup(speedups) - 1.0));
}

inline std::string avg_x_cell(const std::vector<double>& speedups) {
  if (speedups.empty()) return "n/a";
  return TextTable::num(mean_speedup(speedups), 2) + "x";
}

}  // namespace wecsim::bench
