// Harness scaling micro-bench: runs the same grid of simulation points
// through the serial ExperimentRunner and the ParallelExperimentRunner,
// checks the results are identical (cycles per point AND the rendered run
// report, byte for byte), and reports wall-clock for both modes plus the
// aggregate simulated-cycles-per-second throughput. Writes the timing as
// BENCH_harness.json (wecsim.bench_timing schema, see docs/PERFORMANCE.md)
// into WECSIM_REPORT_DIR, or the working directory when unset.
//
// Flags: --jobs=N (worker count for the parallel pass; default WECSIM_JOBS /
// hardware concurrency) and --smoke (tiny grid at scale 1 for CI, registered
// under the perf-smoke ctest label).
#include <cstring>

#include "bench/bench_common.h"

using namespace wecsim;
using namespace wecsim::bench;

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  // This bench measures real simulations: the result cache would turn the
  // second pass into pure disk reads, and tracing or crash-safe journaling
  // would skew both passes.
  ::unsetenv("WECSIM_CACHE_DIR");
  ::unsetenv("WECSIM_TRACE_DIR");
  ::unsetenv("WECSIM_STATE_DIR");

  WorkloadParams params = bench_params();
  std::vector<std::string> names = workload_names();
  int jobs = parse_jobs_flag(argc, argv);
  if (smoke) {
    params.scale = 1;
    names.resize(2);
    if (jobs <= 0) jobs = 2;
  }
  const unsigned parallel_jobs = resolve_jobs(jobs);

  std::printf("=== Harness scaling: serial vs parallel sweep execution ===\n");
  std::printf("grid: %zu workloads x {orig, wth-wp-wec} at 4 TUs, scale %u\n",
              names.size(), params.scale);
  std::printf("parallel jobs: %u\n\n", parallel_jobs);

  const PaperConfig kConfigs[] = {PaperConfig::kOrig, PaperConfig::kWthWpWec};

  // Serial pass ("" disables the disk cache for both runners).
  ExperimentRunner serial(params, std::string());
  for (const auto& name : names) {
    for (PaperConfig config : kConfigs) {
      serial.run(name, paper_config_name(config), make_paper_config(config, 4));
    }
  }
  const double serial_seconds = serial.elapsed_seconds();

  // Parallel pass over the identical grid.
  ParallelExperimentRunner parallel(params, jobs, std::string());
  for (const auto& name : names) {
    for (PaperConfig config : kConfigs) {
      parallel.submit(name, paper_config_name(config),
                      make_paper_config(config, 4));
    }
  }
  parallel.drain();
  for (const auto& name : names) {
    for (PaperConfig config : kConfigs) {
      parallel.run(name, paper_config_name(config),
                   make_paper_config(config, 4));
    }
  }
  const double parallel_seconds = parallel.elapsed_seconds();

  // The whole point of the engine: identical measurements, not just close.
  uint64_t cycles_total = 0;
  for (size_t i = 0; i < serial.records().size(); ++i) {
    const RunRecord& s = serial.records()[i];
    const RunRecord& p = parallel.records()[i];
    if (s.workload != p.workload || s.config_key != p.config_key ||
        s.result.cycles != p.result.cycles) {
      std::fprintf(stderr,
                   "FAIL: record %zu diverged (serial %s|%s %llu cycles, "
                   "parallel %s|%s %llu cycles)\n",
                   i, s.workload.c_str(), s.config_key.c_str(),
                   static_cast<unsigned long long>(s.result.cycles),
                   p.workload.c_str(), p.config_key.c_str(),
                   static_cast<unsigned long long>(p.result.cycles));
      return 1;
    }
    cycles_total += s.result.cycles;
  }
  const std::string serial_report =
      render_run_report("bench_harness_scaling", serial.records());
  const std::string parallel_report =
      render_run_report("bench_harness_scaling", parallel.records());
  if (serial.records().size() != parallel.records().size() ||
      serial_report != parallel_report) {
    std::fprintf(stderr, "FAIL: run reports are not byte-identical "
                         "(serial %zu records, parallel %zu records)\n",
                 serial.records().size(), parallel.records().size());
    return 1;
  }
  std::printf("determinism: %zu records byte-identical across modes\n\n",
              serial.records().size());

  TextTable table({"mode", "jobs", "wall seconds", "Msim-cycles/s"});
  table.add_row({"serial", "1", TextTable::num(serial_seconds, 2),
                 TextTable::num(cycles_total / serial_seconds / 1e6, 2)});
  table.add_row({"parallel", std::to_string(parallel_jobs),
                 TextTable::num(parallel_seconds, 2),
                 TextTable::num(cycles_total / parallel_seconds / 1e6, 2)});
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nparallel speedup: %.2fx\n", serial_seconds / parallel_seconds);

  const char* dir = std::getenv("WECSIM_REPORT_DIR");
  const std::string path = (dir != nullptr && *dir != '\0')
                               ? std::string(dir) + "/BENCH_harness.json"
                               : std::string("BENCH_harness.json");
  try {
    write_timing_report(path, "bench_harness_scaling", parallel_jobs,
                        parallel_seconds, parallel.records());
    std::printf("timing: %s\n", path.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[warn] timing file not written: %s\n", e.what());
  }
  return 0;
}
